// WeakVS-machine (Remark, Section 4.1): createview only requires unique
// ids; the paper claims the two specifications allow exactly the same
// traces. We check the weak machine's extra freedom and probe the
// equivalence empirically: weak executions with out-of-order creation still
// pass the (strict) VS trace checker, because newview presents views in
// increasing order regardless.

#include <gtest/gtest.h>

#include "spec/vs_trace_checker.hpp"
#include "spec/weak_vs_machine.hpp"
#include "trace/events.hpp"
#include "util/rng.hpp"

namespace vsg::spec {
namespace {

core::View view(std::uint64_t epoch, ProcId origin, std::set<ProcId> members) {
  return core::View{core::ViewId{epoch, origin}, std::move(members)};
}

TEST(WeakVSMachine, AllowsOutOfOrderCreation) {
  WeakVSMachine m(3, 3);
  const auto v5 = view(5, 0, {0, 1});
  const auto v2 = view(2, 0, {0, 1, 2});
  EXPECT_TRUE(m.createview_enabled(v5));
  m.createview(v5);
  EXPECT_TRUE(m.createview_enabled(v2)) << "weak: lower id is fine if unique";
  m.createview(v2);
  EXPECT_FALSE(m.createview_enabled(view(2, 0, {1}))) << "duplicate id rejected";
}

TEST(WeakVSMachine, StrictMachineRejectsWhatWeakAccepts) {
  VSMachine strict(3, 3);
  WeakVSMachine weak(3, 3);
  const auto v5 = view(5, 0, {0, 1});
  const auto v2 = view(2, 0, {0, 1});
  strict.createview(v5);
  weak.createview(v5);
  EXPECT_FALSE(strict.createview_enabled(v2));
  EXPECT_TRUE(weak.createview_enabled(v2));
}

TEST(WeakVSMachine, NewviewStillMonotonePerProcessor) {
  WeakVSMachine m(2, 2);
  const auto v5 = view(5, 0, {0, 1});
  const auto v2 = view(2, 0, {0, 1});
  m.createview(v5);
  m.createview(v2);
  m.newview(v5, 0);
  EXPECT_FALSE(m.newview_enabled(v2, 0)) << "0 is already at id 5";
  EXPECT_TRUE(m.newview_enabled(v2, 1));
  m.newview(v2, 1);
  EXPECT_TRUE(m.newview_enabled(v5, 1));
}

// Drive a weak execution with deliberately out-of-order creations and emit
// the external trace; the trace must be accepted by the strict checker
// (the observable behaviour is a VS-machine behaviour).
TEST(WeakVSMachine, OutOfOrderCreationTraceIsStrictlySafe) {
  WeakVSMachine m(3, 3);
  std::vector<trace::TimedEvent> trace;
  auto emit = [&trace](trace::Event e) { trace.push_back({0, std::move(e)}); };

  const auto v9 = view(9, 1, {0, 1, 2});
  const auto v4 = view(4, 2, {1, 2});
  m.createview(v9);
  m.createview(v4);  // created later, smaller id

  // 1 and 2 pass through v4 before v9; 0 jumps straight to v9.
  m.newview(v4, 1);
  emit(trace::NewViewEvent{1, v4});
  m.newview(v4, 2);
  emit(trace::NewViewEvent{2, v4});

  m.gpsnd(1, util::Bytes{1});
  emit(trace::GpsndEvent{1, util::Bytes{1}});
  m.vs_order(1, v4.id);
  while (auto e = m.gprcv_next(1)) {
    m.gprcv(1);
    emit(trace::GprcvEvent{e->p, 1, e->m});
  }
  while (auto e = m.gprcv_next(2)) {
    m.gprcv(2);
    emit(trace::GprcvEvent{e->p, 2, e->m});
  }
  while (auto e = m.safe_next(1)) {
    m.safe(1);
    emit(trace::SafeEvent{e->p, 1, e->m});
  }

  m.newview(v9, 0);
  emit(trace::NewViewEvent{0, v9});
  m.newview(v9, 1);
  emit(trace::NewViewEvent{1, v9});
  m.newview(v9, 2);
  emit(trace::NewViewEvent{2, v9});
  m.gpsnd(0, util::Bytes{2});
  emit(trace::GpsndEvent{0, util::Bytes{2}});
  m.vs_order(0, v9.id);
  for (ProcId q = 0; q < 3; ++q)
    while (auto e = m.gprcv_next(q)) {
      m.gprcv(q);
      emit(trace::GprcvEvent{e->p, q, e->m});
    }

  VSTraceChecker checker(3, 3);
  checker.check_all(trace);
  EXPECT_TRUE(checker.ok()) << (checker.ok() ? "" : checker.violations().front());
}

// Randomized probe of the equivalence claim: random weak executions always
// produce strictly-safe traces.
class WeakVSEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeakVSEquivalence, RandomWeakExecutionsAreStrictlySafe) {
  util::Rng rng(GetParam());
  const int n = 3;
  WeakVSMachine m(n, n);
  std::vector<trace::TimedEvent> trace;
  auto emit = [&trace](trace::Event e) { trace.push_back({0, std::move(e)}); };
  std::uint8_t next_msg = 0;

  for (int step = 0; step < 300; ++step) {
    const auto choice = rng.below(5);
    const auto p = static_cast<ProcId>(rng.below(n));
    switch (choice) {
      case 0: {
        // Random epoch in a small range so collisions and out-of-order
        // creations are common.
        std::set<ProcId> members;
        for (ProcId q = 0; q < n; ++q)
          if (rng.chance(0.6)) members.insert(q);
        if (members.empty()) members.insert(p);
        const core::View v{core::ViewId{1 + rng.below(20), *members.begin()}, members};
        if (m.createview_enabled(v)) m.createview(v);
        break;
      }
      case 1: {
        const auto& created = m.created();
        const auto& v = created[rng.below(created.size())];
        if (m.newview_enabled(v, p)) {
          m.newview(v, p);
          emit(trace::NewViewEvent{p, v});
        }
        break;
      }
      case 2: {
        const util::Bytes payload{next_msg++};
        m.gpsnd(p, payload);
        emit(trace::GpsndEvent{p, payload});
        const auto cur = m.current_viewid(p);
        if (cur.has_value())
          while (m.vs_order_enabled(p, *cur)) m.vs_order(p, *cur);
        break;
      }
      case 3:
        if (auto e = m.gprcv_next(p)) {
          m.gprcv(p);
          emit(trace::GprcvEvent{e->p, p, e->m});
        }
        break;
      case 4:
        if (auto e = m.safe_next(p)) {
          m.safe(p);
          emit(trace::SafeEvent{e->p, p, e->m});
        }
        break;
    }
  }

  VSTraceChecker checker(n, n);
  checker.check_all(trace);
  EXPECT_TRUE(checker.ok()) << "seed " << GetParam() << ": "
                            << (checker.ok() ? "" : checker.violations().front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakVSEquivalence, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace vsg::spec
