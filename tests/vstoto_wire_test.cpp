// VStoTO wire format: round trips and defensive decoding.

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "vstoto/wire.hpp"

namespace vsg::vstoto {
namespace {

core::Label lab(std::uint64_t epoch, std::uint32_t seqno, ProcId origin) {
  return core::Label{core::ViewId{epoch, 0}, seqno, origin};
}

TEST(Wire, LabeledValueRoundTrip) {
  const LabeledValue lv{lab(3, 7, 1), "payload"};
  const auto bytes = encode_message(Message{lv});
  const auto back = decode_message(bytes);
  ASSERT_TRUE(back.has_value());
  const auto* got = std::get_if<LabeledValue>(&*back);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, lv);
}

TEST(Wire, EmptyValueRoundTrip) {
  const LabeledValue lv{lab(1, 1, 0), ""};
  const auto back = decode_message(encode_message(Message{lv}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<LabeledValue>(*back).value, "");
}

TEST(Wire, SummaryRoundTrip) {
  core::Summary x;
  x.con = {{lab(1, 1, 0), "a"}, {lab(1, 2, 1), "b"}};
  x.ord = {lab(1, 1, 0), lab(1, 2, 1)};
  x.next = 2;
  x.high = core::ViewId{1, 0};
  const auto back = decode_message(encode_message(Message{x}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<core::Summary>(*back), x);
}

TEST(Wire, EmptySummaryRoundTrip) {
  const core::Summary x;
  const auto back = decode_message(encode_message(Message{x}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<core::Summary>(*back), x);
}

TEST(Wire, MeasuredSizeIsExact) {
  // encode_message reserves encoded_message_size() up front; exactness here
  // plus Serde.MeasuredReserveCostsExactlyOneAllocation means every message
  // encode costs a single allocation.
  const LabeledValue lv{lab(3, 7, 1), "payload"};
  EXPECT_EQ(encode_message(Message{lv}).size(), encoded_message_size(Message{lv}));

  core::Summary x;
  x.con = {{lab(1, 1, 0), "a"}, {lab(1, 2, 1), "bb"}};
  x.ord = {lab(1, 1, 0), lab(1, 2, 1)};
  x.next = 2;
  x.high = core::ViewId{1, 0};
  EXPECT_EQ(encode_message(Message{x}).size(), encoded_message_size(Message{x}));

  const core::Summary empty;
  EXPECT_EQ(encode_message(Message{empty}).size(), encoded_message_size(Message{empty}));
}

TEST(Wire, UnknownTagRejected) {
  util::Bytes garbage{0x7F, 1, 2, 3};
  EXPECT_FALSE(decode_message(garbage).has_value());
}

TEST(Wire, EmptyBufferRejected) {
  EXPECT_FALSE(decode_message(util::Bytes{}).has_value());
}

TEST(Wire, TruncatedMessageRejected) {
  const LabeledValue lv{lab(3, 7, 1), "payload"};
  auto bytes = encode_message(Message{lv}).to_bytes();
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(Wire, TrailingGarbageRejected) {
  const LabeledValue lv{lab(3, 7, 1), "p"};
  auto bytes = encode_message(Message{lv}).to_bytes();
  bytes.push_back(0xAA);
  EXPECT_FALSE(decode_message(bytes).has_value());
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, RandomBytesNeverCrash) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    util::Bytes buf;
    const auto len = rng.below(40);
    for (std::uint64_t k = 0; k < len; ++k)
      buf.push_back(static_cast<std::uint8_t>(rng.next()));
    (void)decode_message(buf);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace vsg::vstoto
