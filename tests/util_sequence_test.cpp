// Sequence algebra (Section 2 preliminaries): prefix ordering laws,
// consistency, lub, applyall.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/sequence.hpp"

namespace vsg::util {
namespace {

using V = std::vector<int>;

TEST(Sequence, EmptyIsPrefixOfEverything) {
  EXPECT_TRUE(is_prefix(V{}, V{}));
  EXPECT_TRUE(is_prefix(V{}, V{1, 2, 3}));
  EXPECT_FALSE(is_prefix(V{1}, V{}));
}

TEST(Sequence, PrefixBasics) {
  EXPECT_TRUE(is_prefix(V{1, 2}, V{1, 2, 3}));
  EXPECT_FALSE(is_prefix(V{2, 1}, V{1, 2, 3}));
  EXPECT_TRUE(is_prefix(V{1, 2, 3}, V{1, 2, 3}));
  EXPECT_FALSE(is_prefix(V{1, 2, 3, 4}, V{1, 2, 3}));
}

TEST(Sequence, PrefixIsReflexiveAntisymmetricTransitive) {
  const V a{1, 2};
  const V b{1, 2, 3};
  const V c{1, 2, 3, 4};
  EXPECT_TRUE(is_prefix(a, a));
  EXPECT_TRUE(is_prefix(a, b) && is_prefix(b, c) && is_prefix(a, c));
  EXPECT_FALSE(is_prefix(a, b) && is_prefix(b, a));
}

TEST(Sequence, ComparableMatchesPrefixEitherWay) {
  EXPECT_TRUE(comparable(V{1}, V{1, 2}));
  EXPECT_TRUE(comparable(V{1, 2}, V{1}));
  EXPECT_FALSE(comparable(V{1, 3}, V{1, 2}));
}

TEST(Sequence, ConsistencyOfCollections) {
  EXPECT_TRUE(is_consistent<int>({}));
  EXPECT_TRUE(is_consistent<int>({{1}, {1, 2}, {}, {1, 2, 3}}));
  EXPECT_FALSE(is_consistent<int>({{1}, {2}}));
  EXPECT_FALSE(is_consistent<int>({{1, 2, 3}, {1, 2, 4}}));
}

TEST(Sequence, LubOfConsistentCollectionIsLongestMember) {
  const auto result = lub<int>({{1}, {1, 2, 3}, {1, 2}});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, (V{1, 2, 3}));
}

TEST(Sequence, LubOfEmptyCollectionIsEmptySequence) {
  const auto result = lub<int>({});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

TEST(Sequence, LubRejectsInconsistentCollections) {
  EXPECT_FALSE(lub<int>({{1, 2}, {1, 3}}).has_value());
}

TEST(Sequence, ApplyallMapsInOrder) {
  const auto result = applyall([](int x) { return x * 2; }, V{1, 2, 3});
  EXPECT_EQ(result, (V{2, 4, 6}));
}

TEST(Sequence, PrefixOfClampsAtLength) {
  EXPECT_EQ(prefix_of(V{1, 2, 3}, 2), (V{1, 2}));
  EXPECT_EQ(prefix_of(V{1, 2, 3}, 9), (V{1, 2, 3}));
  EXPECT_EQ(prefix_of(V{1, 2, 3}, 0), V{});
}

TEST(Sequence, ContainsAndIndexOf) {
  EXPECT_TRUE(contains(V{5, 6, 7}, 6));
  EXPECT_FALSE(contains(V{5, 6, 7}, 8));
  EXPECT_EQ(index_of(V{5, 6, 7}, 7), std::optional<std::size_t>(2));
  EXPECT_FALSE(index_of(V{5, 6, 7}, 9).has_value());
}

// Property sweep: for random sequence pairs, comparable(a,b) agrees with a
// direct definition, and lub of any chain is its maximum.
class SequenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SequenceProperty, RandomChainsHaveLub) {
  Rng rng(GetParam());
  V base;
  for (int i = 0; i < 20; ++i) base.push_back(static_cast<int>(rng.below(100)));
  std::vector<V> chain;
  for (int i = 0; i < 6; ++i)
    chain.push_back(prefix_of(base, static_cast<std::size_t>(rng.below(21))));
  EXPECT_TRUE(is_consistent(chain));
  const auto l = lub(chain);
  ASSERT_TRUE(l.has_value());
  for (const auto& s : chain) EXPECT_TRUE(is_prefix(s, *l));
  EXPECT_TRUE(contains(chain, *l));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequenceProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace vsg::util
