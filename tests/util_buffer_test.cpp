// Buffer/BufferView: the zero-copy data plane's ownership primitives.
// Refcounting, immutability, slice lifetime past parent release (the case
// ASan would catch if slices borrowed instead of shared), and storage ids.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/buffer.hpp"

namespace vsg::util {
namespace {

Bytes bytes(std::initializer_list<std::uint8_t> b) { return Bytes(b); }

TEST(Buffer, EmptyBufferHasNoStorage) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.id(), 0u);
  EXPECT_EQ(b.use_count(), 0);
  EXPECT_EQ(b.storage_offset(), 0u);
}

TEST(Buffer, WrapTakesOwnershipWithoutCopy) {
  Bytes src = bytes({1, 2, 3});
  const std::uint8_t* p = src.data();
  Buffer b(std::move(src));
  EXPECT_EQ(b.data(), p) << "wrap must reuse the vector's storage";
  EXPECT_EQ(b, bytes({1, 2, 3}));
}

TEST(Buffer, CopyConstructionFromBytesCopies) {
  const Bytes src = bytes({4, 5});
  Buffer b(src);
  EXPECT_NE(b.data(), src.data());
  EXPECT_EQ(b, src);
}

TEST(Buffer, CopyIsRefcountBumpNotByteCopy) {
  Buffer a(bytes({1, 2, 3, 4}));
  Buffer b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(b.use_count(), 2);
  EXPECT_EQ(a.id(), b.id());
}

TEST(Buffer, StorageIdsAreUniqueAndNeverReused) {
  const std::uint64_t first = Buffer(bytes({1})).id();
  const std::uint64_t second = Buffer(bytes({1})).id();
  EXPECT_NE(first, 0u);
  EXPECT_NE(second, first) << "same content, distinct storages";
  // The first storage is long gone; a fresh one must not recycle its id
  // (heap addresses would — that is why ids exist).
  const std::uint64_t third = Buffer(bytes({1})).id();
  EXPECT_NE(third, first);
  EXPECT_NE(third, second);
}

TEST(Buffer, StorageIdsStayUniqueAcrossThreads) {
  // The uid counter is relaxed-atomic: the simulator is single-threaded,
  // but harnesses and tools allocate buffers from worker threads, and a
  // duplicated id would silently poison the decode caches keyed on it.
  constexpr int kPerThread = 20000;
  std::vector<std::uint64_t> ids[2];
  std::thread workers[2];
  for (int t = 0; t < 2; ++t) {
    ids[t].reserve(kPerThread);
    workers[t] = std::thread([&ids, t] {
      for (int i = 0; i < kPerThread; ++i)
        ids[t].push_back(Buffer(Bytes{static_cast<std::uint8_t>(i)}).id());
    });
  }
  for (auto& w : workers) w.join();
  std::vector<std::uint64_t> all;
  all.reserve(2 * kPerThread);
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate storage uid handed to two threads";
}

TEST(Buffer, SliceSharesStorage) {
  Buffer whole(bytes({10, 11, 12, 13, 14}));
  Buffer mid = whole.slice(1, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid, bytes({11, 12, 13}));
  EXPECT_EQ(mid.id(), whole.id());
  EXPECT_EQ(mid.storage_offset(), 1u);
  EXPECT_EQ(mid.data(), whole.data() + 1);
  EXPECT_EQ(whole.use_count(), 2);
}

TEST(Buffer, SliceClampsToValidRange) {
  Buffer b(bytes({1, 2, 3}));
  EXPECT_EQ(b.slice(1, 100).size(), 2u);
  EXPECT_TRUE(b.slice(100, 5).empty());
  EXPECT_TRUE(b.slice(3, 0).empty());
}

TEST(Buffer, SliceOutlivesParent) {
  // The load-bearing lifetime property: token entries are slices of the
  // packet that carried them, held long after the packet Buffer is gone.
  // Under ASan this is a heap-use-after-free if slices merely borrow.
  Buffer slice;
  {
    Buffer packet(bytes({0xAA, 0xBB, 0xCC, 0xDD}));
    slice = packet.slice(2, 2);
  }  // packet released
  EXPECT_EQ(slice.use_count(), 1);
  EXPECT_EQ(slice, bytes({0xCC, 0xDD}));
}

TEST(Buffer, SliceOfSliceRebasesIntoSameStorage) {
  Buffer whole(bytes({1, 2, 3, 4, 5, 6}));
  Buffer inner = whole.slice(1, 4).slice(1, 2);
  EXPECT_EQ(inner, bytes({3, 4}));
  EXPECT_EQ(inner.id(), whole.id());
  EXPECT_EQ(inner.storage_offset(), 2u);
}

TEST(Buffer, ContentEqualityIsNotIdentity) {
  Buffer a(bytes({1, 2}));
  Buffer b(bytes({1, 2}));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(a, bytes({1, 2}));
  EXPECT_EQ(bytes({1, 2}), a);
  EXPECT_FALSE(a == Buffer(bytes({1, 3})));
  EXPECT_FALSE(a == Buffer(bytes({1, 2, 3})));
}

TEST(Buffer, ToBytesCopiesOut) {
  Buffer b(bytes({7, 8, 9}));
  Bytes out = b.to_bytes();
  EXPECT_EQ(out, bytes({7, 8, 9}));
  out[0] = 0;  // mutating the copy must not touch the immutable buffer
  EXPECT_EQ(b[0], 7);
}

TEST(Buffer, CopyFromViewSnapshotsBytes) {
  Bytes src = bytes({1, 2, 3});
  Buffer b = Buffer::copy(BufferView(src));
  src[0] = 99;
  EXPECT_EQ(b, bytes({1, 2, 3}));
}

TEST(BufferView, SubviewClampsLikeSlice) {
  const Bytes src = bytes({1, 2, 3, 4});
  BufferView v(src);
  EXPECT_EQ(v.subview(1, 2), BufferView(src.data() + 1, 2));
  EXPECT_EQ(v.subview(2, 100).size(), 2u);
  EXPECT_TRUE(v.subview(100, 1).empty());
}

TEST(BufferView, EqualityComparesContent) {
  const Bytes a = bytes({1, 2});
  const Bytes b = bytes({1, 2});
  EXPECT_EQ(BufferView(a), BufferView(b));
  EXPECT_FALSE(BufferView(a) == BufferView(a).subview(0, 1));
}

TEST(BufferView, BufferConvertsImplicitly) {
  Buffer b(bytes({5, 6}));
  BufferView v = b;
  EXPECT_EQ(v.data(), b.data());
  EXPECT_EQ(v.size(), 2u);
}

}  // namespace
}  // namespace vsg::util
