// The state-exchange algebra of Figure 8: confirm prefixes, knowncontent,
// maxprimary / reps / chosenrep, shortorder / fullorder, maxnextconfirm.

#include <gtest/gtest.h>

#include "core/summary.hpp"

namespace vsg::core {
namespace {

Label lab(std::uint64_t epoch, std::uint32_t seqno, ProcId origin) {
  return Label{ViewId{epoch, 0}, seqno, origin};
}

TEST(Summary, ConfirmedPrefixIsNextMinusOne) {
  Summary x;
  x.ord = {lab(1, 1, 0), lab(1, 2, 0), lab(1, 3, 0)};
  x.next = 3;
  EXPECT_EQ(confirmed_prefix(x), (std::vector<Label>{lab(1, 1, 0), lab(1, 2, 0)}));
}

TEST(Summary, ConfirmedPrefixClampsToOrdLength) {
  Summary x;
  x.ord = {lab(1, 1, 0)};
  x.next = 10;
  EXPECT_EQ(confirmed_prefix(x).size(), 1u);
  x.next = 0;  // degenerate
  EXPECT_TRUE(confirmed_prefix(x).empty());
}

TEST(Summary, ConfirmedPrefixEmptyWhenNextIsOne) {
  Summary x;
  x.ord = {lab(1, 1, 0)};
  x.next = 1;
  EXPECT_TRUE(confirmed_prefix(x).empty());
}

SummaryMap two_summaries() {
  Summary x0;
  x0.con = {{lab(1, 1, 0), "a"}, {lab(1, 1, 1), "b"}};
  x0.ord = {lab(1, 1, 0)};
  x0.next = 2;
  x0.high = ViewId{1, 0};
  Summary x1;
  x1.con = {{lab(1, 1, 1), "b"}, {lab(1, 2, 1), "c"}};
  x1.ord = {lab(1, 1, 0), lab(1, 1, 1)};
  x1.next = 1;
  x1.high = ViewId{2, 0};
  return SummaryMap{{0, x0}, {1, x1}};
}

TEST(Summary, KnowncontentUnionsAllCon) {
  const auto kc = knowncontent(two_summaries());
  EXPECT_EQ(kc.size(), 3u);
  EXPECT_EQ(kc.at(lab(1, 1, 0)), "a");
  EXPECT_EQ(kc.at(lab(1, 2, 1)), "c");
}

TEST(Summary, MaxprimaryPicksGreatestHigh) {
  EXPECT_EQ(maxprimary(two_summaries()), std::optional<ViewId>(ViewId{2, 0}));
}

TEST(Summary, MaxprimaryAllBottomIsBottom) {
  SummaryMap y{{0, Summary{}}, {1, Summary{}}};
  EXPECT_FALSE(maxprimary(y).has_value());
}

TEST(Summary, RepsAreTheMaximizers) {
  auto y = two_summaries();
  EXPECT_EQ(reps(y), std::vector<ProcId>{1});
  // Tie: both at {2,0}.
  y.at(0).high = ViewId{2, 0};
  EXPECT_EQ(reps(y), (std::vector<ProcId>{0, 1}));
}

TEST(Summary, ChosenrepIsDeterministicHighestId) {
  auto y = two_summaries();
  y.at(0).high = ViewId{2, 0};
  EXPECT_EQ(chosenrep(y), 1);
}

TEST(Summary, ShortorderIsChosenrepsOrd) {
  const auto y = two_summaries();
  EXPECT_EQ(shortorder(y), (std::vector<Label>{lab(1, 1, 0), lab(1, 1, 1)}));
}

TEST(Summary, FullorderAppendsRemainingKnownLabelsInLabelOrder) {
  const auto y = two_summaries();
  // shortorder = [l(1,1,0), l(1,1,1)]; remaining known label is l(1,2,1).
  EXPECT_EQ(fullorder(y),
            (std::vector<Label>{lab(1, 1, 0), lab(1, 1, 1), lab(1, 2, 1)}));
}

TEST(Summary, FullorderKeepsRepresentativePrefixUnsorted) {
  // The representative's ord need not be in label order; fullorder must
  // preserve it as a prefix verbatim.
  Summary x;
  x.con = {{lab(1, 1, 0), "a"}, {lab(1, 1, 1), "b"}, {lab(1, 2, 0), "c"}};
  x.ord = {lab(1, 1, 1), lab(1, 1, 0)};  // deliberately "out of order"
  x.high = ViewId{1, 0};
  SummaryMap y{{0, x}};
  const auto full = fullorder(y);
  ASSERT_EQ(full.size(), 3u);
  EXPECT_EQ(full[0], lab(1, 1, 1));
  EXPECT_EQ(full[1], lab(1, 1, 0));
  EXPECT_EQ(full[2], lab(1, 2, 0));
}

TEST(Summary, MaxnextconfirmPicksGreatest) {
  EXPECT_EQ(maxnextconfirm(two_summaries()), 2u);
  SummaryMap empty_next{{0, Summary{}}};
  EXPECT_EQ(maxnextconfirm(empty_next), 1u);
}

TEST(Summary, SerdeRoundTrip) {
  auto y = two_summaries();
  for (const auto& [p, x] : y) {
    util::Encoder e;
    encode(e, x);
    const auto buf = e.take();
    util::Decoder d(buf);
    EXPECT_EQ(decode_summary(d), x);
    EXPECT_TRUE(d.complete());
  }
}

TEST(Summary, SerdeRoundTripBottomHigh) {
  Summary x;
  x.next = 5;
  util::Encoder e;
  encode(e, x);
  const auto buf = e.take();
  util::Decoder d(buf);
  const auto back = decode_summary(d);
  EXPECT_EQ(back, x);
  EXPECT_FALSE(back.high.has_value());
}

}  // namespace
}  // namespace vsg::core
