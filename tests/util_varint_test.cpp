// Varint primitives (docs/WIRE.md, "Varint rules"): LEB128 uvarint and
// zigzag svarint, property-tested against an independent naive mirror
// encoder, plus boundary, truncation and random-byte fuzz coverage. The
// VarintFuzz suite is the decoder-hardening half; check.sh runs it under
// the sanitizer build.

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"
#include "util/serde.hpp"

namespace vsg::util {
namespace {

// Independent mirror of the production LEB128 encoder: written from the
// format description, not from serde.cpp, so a shared bug would have to be
// made twice.
Bytes mirror_uvarint(std::uint64_t v) {
  Bytes out;
  do {
    std::uint8_t byte = v & 0x7F;
    v >>= 7;
    if (v != 0) byte |= 0x80;
    out.push_back(byte);
  } while (v != 0);
  return out;
}

Bytes mirror_svarint(std::int64_t v) {
  // Zigzag by definition: 0,-1,1,-2,2,... -> 0,1,2,3,4,...
  const std::uint64_t z = v >= 0 ? 2 * static_cast<std::uint64_t>(v)
                                 : 2 * (~static_cast<std::uint64_t>(v)) + 1;
  return mirror_uvarint(z);
}

std::vector<std::uint64_t> boundary_values() {
  std::vector<std::uint64_t> vs{0, 1, 2};
  for (int shift = 7; shift < 64; shift += 7) {
    const std::uint64_t edge = std::uint64_t{1} << shift;
    vs.push_back(edge - 1);
    vs.push_back(edge);
    vs.push_back(edge + 1);
  }
  vs.push_back(std::numeric_limits<std::uint64_t>::max() - 1);
  vs.push_back(std::numeric_limits<std::uint64_t>::max());
  return vs;
}

TEST(VarintProperty, UvarintMatchesMirrorEncoderAtBoundaries) {
  for (const std::uint64_t v : boundary_values()) {
    Encoder e;
    e.uvarint(v);
    EXPECT_EQ(e.bytes(), mirror_uvarint(v)) << v;
    EXPECT_EQ(e.size(), uvarint_size(v)) << v;
    Decoder d(e.bytes());
    EXPECT_EQ(d.uvarint(), v);
    EXPECT_TRUE(d.complete()) << v;
  }
}

TEST(VarintProperty, SvarintMatchesMirrorEncoderAtBoundaries) {
  std::vector<std::int64_t> vs{0, -1, 1, -64, 63, -65, 64,
                               std::numeric_limits<std::int64_t>::min(),
                               std::numeric_limits<std::int64_t>::max()};
  for (const std::uint64_t u : boundary_values()) {
    vs.push_back(static_cast<std::int64_t>(u));
    vs.push_back(-static_cast<std::int64_t>(u >> 1));
  }
  for (const std::int64_t v : vs) {
    Encoder e;
    e.svarint(v);
    EXPECT_EQ(e.bytes(), mirror_svarint(v)) << v;
    EXPECT_EQ(e.size(), svarint_size(v)) << v;
    Decoder d(e.bytes());
    EXPECT_EQ(d.svarint(), v);
    EXPECT_TRUE(d.complete()) << v;
  }
}

TEST(VarintProperty, RandomValuesRoundTripAndMatchMirror) {
  util::Rng rng(20260808);
  for (int i = 0; i < 20000; ++i) {
    // Bias toward small widths so every length 1..10 is exercised.
    const int bits = static_cast<int>(rng.below(65));
    const std::uint64_t u =
        bits == 0 ? 0 : rng.next() >> (64 - bits);
    Encoder e;
    e.uvarint(u);
    ASSERT_EQ(e.bytes(), mirror_uvarint(u)) << u;
    Decoder d(e.bytes());
    ASSERT_EQ(d.uvarint(), u);
    ASSERT_TRUE(d.complete());

    const std::int64_t s = static_cast<std::int64_t>(rng.next() >> (64 - 1 - rng.below(64)));
    Encoder es;
    es.svarint(s);
    ASSERT_EQ(es.bytes(), mirror_svarint(s)) << s;
    Decoder ds(es.bytes());
    ASSERT_EQ(ds.svarint(), s);
    ASSERT_TRUE(ds.complete());
  }
}

TEST(VarintProperty, ZigzagIsItsOwnInverseAndOrdersByMagnitude) {
  for (const std::int64_t v : {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
                               std::numeric_limits<std::int64_t>::min(),
                               std::numeric_limits<std::int64_t>::max()})
    EXPECT_EQ(unzigzag(zigzag(v)), v) << v;
  // Small magnitudes of either sign get 1-byte codes.
  EXPECT_EQ(svarint_size(-64), 1u);
  EXPECT_EQ(svarint_size(63), 1u);
  EXPECT_EQ(svarint_size(64), 2u);
  EXPECT_EQ(svarint_size(-65), 2u);
}

TEST(VarintFuzz, TruncationAtEveryByteIsRejected) {
  for (const std::uint64_t v : boundary_values()) {
    Encoder e;
    e.uvarint(v);
    const Bytes& full = e.bytes();
    for (std::size_t keep = 0; keep < full.size(); ++keep) {
      // Truncation mid-varint only malforms when the kept prefix still has
      // its continuation bit set; every proper prefix of a varint does.
      const Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(keep));
      Decoder d(cut);
      (void)d.uvarint();
      EXPECT_FALSE(d.ok()) << v << " truncated to " << keep;
    }
  }
}

TEST(VarintFuzz, OverlongAndUnterminatedEncodingsAreRejected) {
  // 10 continuation bytes and nothing after: unterminated.
  Bytes unterminated(10, 0xFF);
  Decoder d1(unterminated);
  (void)d1.uvarint();
  EXPECT_FALSE(d1.ok());
  // A 10th byte with payload bits above 2^64 would overflow; rejected.
  Bytes overflow(9, 0x80);
  overflow.push_back(0x02);  // bit 64
  Decoder d2(overflow);
  (void)d2.uvarint();
  EXPECT_FALSE(d2.ok());
  // The largest legal encoding (u64 max) still decodes.
  Bytes max_enc = mirror_uvarint(std::numeric_limits<std::uint64_t>::max());
  Decoder d3(max_enc);
  EXPECT_EQ(d3.uvarint(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(d3.complete());
}

TEST(VarintFuzz, RandomBytesNeverCrashAndFailuresStick) {
  // Hostility fuzz: arbitrary byte soup through uvarint/svarint/vstr/vraw.
  // The decoder must never read out of bounds (ASan-checked in the
  // sanitize stage) and once !ok() every further read stays zero.
  util::Rng rng(424242);
  for (int round = 0; round < 5000; ++round) {
    Bytes soup;
    const std::uint64_t len = rng.below(24);
    for (std::uint64_t i = 0; i < len; ++i)
      soup.push_back(static_cast<std::uint8_t>(rng.next()));
    Decoder d(soup);
    for (int reads = 0; reads < 6; ++reads) {
      switch (rng.below(4)) {
        case 0: (void)d.uvarint(); break;
        case 1: (void)d.svarint(); break;
        case 2: (void)d.vstr(); break;
        default: (void)d.vraw_view(); break;
      }
      if (!d.ok()) {
        (void)d.uvarint();
        EXPECT_FALSE(d.ok());
        EXPECT_EQ(d.uvarint(), 0u);
        break;
      }
    }
  }
}

TEST(VarintFuzz, DecodeOfValidStreamIsExactAndPositioned) {
  // Interleave varints with fixed-width fields and length-prefixed blobs;
  // decode must consume exactly what encode produced.
  util::Rng rng(7);
  for (int round = 0; round < 500; ++round) {
    const std::uint64_t a = rng.next() >> rng.below(64);
    const std::int64_t b = static_cast<std::int64_t>(rng.next());
    Bytes blob;
    for (std::uint64_t i = rng.below(9); i > 0; --i)
      blob.push_back(static_cast<std::uint8_t>(rng.next()));
    Encoder e;
    e.uvarint(a);
    e.u8(0x5A);
    e.svarint(b);
    e.vraw(BufferView(blob));
    Decoder d(e.bytes());
    EXPECT_EQ(d.uvarint(), a);
    EXPECT_EQ(d.u8(), 0x5A);
    EXPECT_EQ(d.svarint(), b);
    EXPECT_EQ(d.vraw_view(), BufferView(blob));
    EXPECT_TRUE(d.complete());
  }
}

}  // namespace
}  // namespace vsg::util
