// SpecVS (the VS-machine-backed reference service): the partition oracle
// creates views matching connectivity components, pumping respects
// processor failure status, and the machine state stays visible and
// Lemma-4.1-clean throughout.

#include <gtest/gtest.h>

#include "harness/world.hpp"
#include "spec/vs_machine.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig spec_cfg(int n, std::uint64_t seed, int n0 = -1) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.n0 = n0;
  cfg.backend = Backend::kSpec;
  cfg.seed = seed;
  return cfg;
}

TEST(SpecVS, StableNetworkCreatesNoViews) {
  World world(spec_cfg(3, 1));
  world.run_until(sim::sec(2));
  EXPECT_EQ(world.spec_vs()->machine().created().size(), 1u) << "only the initial view";
  for (const auto& te : world.recorder().events())
    EXPECT_EQ(trace::as<trace::NewViewEvent>(te), nullptr);
}

TEST(SpecVS, OracleViewsMatchComponents) {
  World world(spec_cfg(5, 2));
  world.partition_at(sim::msec(100), {{0, 1, 2}, {3, 4}});
  world.run_until(sim::sec(1));
  const auto& machine = world.spec_vs()->machine();
  // Two new views created, one per component, with matching membership.
  ASSERT_EQ(machine.created().size(), 3u);
  std::set<std::set<ProcId>> memberships;
  for (std::size_t i = 1; i < machine.created().size(); ++i)
    memberships.insert(machine.created()[i].members);
  EXPECT_TRUE(memberships.count({0, 1, 2}));
  EXPECT_TRUE(memberships.count({3, 4}));
  // Everyone's current viewid is its component's view.
  for (ProcId p = 0; p < 5; ++p) {
    const auto cur = machine.current_viewid(p);
    ASSERT_TRUE(cur.has_value());
    const auto members = machine.created_membership(*cur);
    ASSERT_TRUE(members.has_value());
    EXPECT_TRUE(members->count(p));
  }
}

TEST(SpecVS, RepeatedIdenticalPartitionCreatesNoDuplicateViews) {
  World world(spec_cfg(4, 3));
  world.partition_at(sim::msec(100), {{0, 1}, {2, 3}});
  world.run_until(sim::sec(1));
  const auto created = world.spec_vs()->machine().created().size();
  // Re-issuing the same partition must not spawn fresh views.
  world.partition_at(world.simulator().now(), {{0, 1}, {2, 3}});
  world.run_until(sim::sec(2));
  EXPECT_EQ(world.spec_vs()->machine().created().size(), created);
}

TEST(SpecVS, LateJoinerGetsViewViaOracle) {
  World world(spec_cfg(3, 4, /*n0=*/2));
  world.run_until(sim::sec(1));
  // The oracle notices 2 is connected to {0,1} and forms a 3-member view.
  const auto cur = world.spec_vs()->machine().current_viewid(2);
  ASSERT_TRUE(cur.has_value());
  const auto members = world.spec_vs()->machine().created_membership(*cur);
  ASSERT_TRUE(members.has_value());
  EXPECT_EQ(*members, (std::set<ProcId>{0, 1, 2}));
  EXPECT_TRUE(world.check_vs_safety().empty());
}

TEST(SpecVS, BadProcessorReceivesNothingUntilGood) {
  World world(spec_cfg(3, 5));
  world.proc_status_at(sim::msec(10), 2, sim::Status::kBad);
  world.bcast_at(sim::msec(100), 0, "x");
  world.run_until(sim::sec(2));
  // 2 is stopped: no gprcv events at it.
  for (const auto& te : world.recorder().events()) {
    if (const auto* e = trace::as<trace::GprcvEvent>(te)) {
      EXPECT_NE(e->dst, 2);
    }
  }

  world.proc_status_at(world.simulator().now(), 2, sim::Status::kGood);
  world.run_until(sim::sec(4));
  std::size_t at_2 = 0;
  for (const auto& te : world.recorder().events())
    if (const auto* e = trace::as<trace::GprcvEvent>(te))
      if (e->dst == 2) ++at_2;
  EXPECT_GT(at_2, 0u) << "pumping resumed on recovery";
  EXPECT_TRUE(world.check_vs_safety().empty());
}

TEST(SpecVS, MachineStateStaysLemma41Clean) {
  World world(spec_cfg(4, 6));
  world.partition_at(sim::msec(100), {{0, 2}, {1, 3}});
  world.bcast_at(sim::msec(300), 0, "a");
  world.heal_at(sim::msec(600));
  while (world.simulator().now() < sim::sec(3) && world.simulator().step()) {
    const auto bad = spec::check_lemma_4_1(world.spec_vs()->machine());
    ASSERT_TRUE(bad.empty()) << bad.front();
  }
}

TEST(SpecVS, SafeFollowsDeliveryEverywhere) {
  World world(spec_cfg(3, 7));
  world.bcast_at(sim::msec(50), 1, "v");
  world.run_until(sim::sec(2));
  // Each safe event at q is preceded by gprcv of the same payload at every
  // member — enforced wholesale by the checker.
  EXPECT_TRUE(world.check_vs_safety().empty());
  std::size_t safes = 0;
  for (const auto& te : world.recorder().events())
    if (trace::as<trace::SafeEvent>(te)) ++safes;
  EXPECT_GT(safes, 0u);
}

}  // namespace
}  // namespace vsg
