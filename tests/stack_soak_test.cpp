// Soak: one long randomized run per seed mixing everything the harness can
// throw — repeated partitions with and without quorums, heals, processor
// crash/recovery/slowness, ugly links with corruption, and client traffic
// throughout — over a minute of simulated time. Safety checked wholesale
// at the end; liveness checked for the final stabilized group.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

class Soak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Soak, MinuteOfChaosStaysSafeAndRecovers) {
  const auto seed = GetParam();
  const int n = 6;
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = seed;
  cfg.link.ugly_corrupt = 0.2;
  World world(cfg);
  util::Rng rng(seed * 6089 + 17);

  // Phase structure: 6 chaos windows of 8s each, then stabilization.
  int value_count = 0;
  for (int phase = 0; phase < 6; ++phase) {
    const sim::Time base = phase * sim::sec(8);
    // Random partition shape for this phase.
    std::vector<std::set<ProcId>> comps(1 + rng.below(3));
    for (ProcId p = 0; p < n; ++p)
      comps[rng.below(comps.size())].insert(p);
    std::vector<std::set<ProcId>> nonempty;
    for (auto& c : comps)
      if (!c.empty()) nonempty.push_back(std::move(c));
    world.partition_at(base + sim::msec(500), nonempty);

    // A random processor misbehaves for part of the phase.
    const auto victim = static_cast<ProcId>(rng.below(n));
    const auto status = rng.chance(0.5) ? sim::Status::kBad : sim::Status::kUgly;
    world.proc_status_at(base + sim::sec(2), victim, status);
    world.proc_status_at(base + sim::sec(5), victim, sim::Status::kGood);

    // Random ugly links.
    for (int k = 0; k < 3; ++k) {
      const auto p = static_cast<ProcId>(rng.below(n));
      auto q = static_cast<ProcId>(rng.below(n));
      if (q == p) q = (q + 1) % n;
      world.link_status_at(base + sim::sec(3), p, q, sim::Status::kUgly);
    }

    // Traffic all along.
    for (int k = 0; k < 5; ++k) {
      const auto sender = static_cast<ProcId>(rng.below(n));
      world.bcast_at(base + sim::sec(1) + k * sim::msec(700), sender,
                     "s" + std::to_string(seed) + ".v" + std::to_string(value_count++));
    }
  }
  // Stabilize: everything good and connected, let recovery finish.
  world.heal_at(sim::sec(49));
  world.simulator().at(sim::sec(49), [&world, n] {
    for (ProcId p = 0; p < n; ++p)
      if (world.failures().proc(p) != sim::Status::kGood)
        world.failures().set_proc(p, sim::Status::kGood, world.simulator().now());
  });
  world.run_until(sim::sec(80));

  const auto to_violations = world.check_to_safety();
  ASSERT_TRUE(to_violations.empty())
      << "seed " << seed << ": " << to_violations.front();
  const auto vs_violations = world.check_vs_safety();
  ASSERT_TRUE(vs_violations.empty())
      << "seed " << seed << ": " << vs_violations.front();

  // Liveness after stabilization: every submitted value reaches everyone,
  // in one identical order.
  const auto& reference = world.stack().process(0).delivered();
  EXPECT_EQ(reference.size(), static_cast<std::size_t>(value_count))
      << "seed " << seed << ": all " << value_count << " values recovered";
  for (ProcId p = 1; p < n; ++p)
    EXPECT_EQ(world.stack().process(p).delivered(), reference)
        << "seed " << seed << " at processor " << p;

  // And the stabilized group satisfies the conditional properties.
  std::set<ProcId> q;
  for (ProcId p = 0; p < n; ++p) q.insert(p);
  const auto& ring = world.config().ring;
  const sim::Time b = 9 * ring.delta + std::max(ring.pi + (n + 3) * ring.delta, ring.mu);
  const sim::Time d = 3 * (ring.pi + n * ring.delta);
  const auto vs = world.vs_report(q, d, sim::sec(75));
  ASSERT_TRUE(vs.stability.premise_holds) << "seed " << seed << ": "
                                          << vs.stability.why_not;
  EXPECT_TRUE(vs.views_converged) << "seed " << seed;
  EXPECT_TRUE(vs.holds_with(b)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soak, ::testing::Values(1001, 1002, 1003, 1004, 1005, 1006));

}  // namespace
}  // namespace vsg
