// TO-property(b, d, Q) evaluation on hand-built timed traces.

#include <gtest/gtest.h>

#include "props/to_property.hpp"

namespace vsg::props {
namespace {

using trace::BcastEvent;
using trace::BrcvEvent;
using trace::TimedEvent;

TimedEvent bcast(sim::Time at, ProcId p, const char* a) {
  return {at, BcastEvent{p, a}};
}
TimedEvent brcv(sim::Time at, ProcId origin, ProcId dest, const char* a) {
  return {at, BrcvEvent{origin, dest, a}};
}

TEST(TOProperty, TimelyDeliveryNeedsNoLPrime) {
  std::vector<TimedEvent> tr{
      bcast(1000, 0, "a"),
      brcv(1500, 0, 0, "a"),
      brcv(1800, 0, 1, "a"),
  };
  const auto report = evaluate_to_property(tr, {0, 1}, 2, /*d=*/1000);
  ASSERT_TRUE(report.stability.premise_holds);
  ASSERT_TRUE(report.required_lprime.has_value());
  EXPECT_EQ(*report.required_lprime, 0);
  EXPECT_TRUE(report.holds_with(0));
  EXPECT_EQ(report.max_delivery_lag, 800);
  EXPECT_EQ(report.values_checked, 1u);
}

TEST(TOProperty, SlowEarlyDeliveryAbsorbedByLPrime) {
  // Value sent at t=0 takes 5000 to arrive; with d=1000 we need l' >= 4000.
  std::vector<TimedEvent> tr{
      bcast(0, 0, "a"),
      brcv(4000, 0, 0, "a"),
      brcv(5000, 0, 1, "a"),
  };
  const auto report = evaluate_to_property(tr, {0, 1}, 2, 1000);
  ASSERT_TRUE(report.required_lprime.has_value());
  EXPECT_EQ(*report.required_lprime, 4000);
  EXPECT_TRUE(report.holds_with(4000));
  EXPECT_FALSE(report.holds_with(3999));
}

TEST(TOProperty, MissingDeliveryIsViolation) {
  std::vector<TimedEvent> tr{
      bcast(0, 0, "a"),
      brcv(100, 0, 0, "a"),  // never reaches 1
  };
  const auto report = evaluate_to_property(tr, {0, 1}, 2, 1000);
  EXPECT_FALSE(report.required_lprime.has_value());
  EXPECT_FALSE(report.holds_with(1000000));
  EXPECT_FALSE(report.violations.empty());
}

TEST(TOProperty, ConclusionCCoversValuesFromOutsideQ) {
  // 2 is outside Q; its value reaches 0 but never 1: violates (c).
  std::vector<TimedEvent> tr{
      {0, sim::StatusEvent{0, true, 0, 2, sim::Status::kBad}},
      {0, sim::StatusEvent{0, true, 2, 0, sim::Status::kBad}},
      {0, sim::StatusEvent{0, true, 1, 2, sim::Status::kBad}},
      {0, sim::StatusEvent{0, true, 2, 1, sim::Status::kBad}},
      bcast(10, 2, "z"),
      brcv(20, 2, 0, "z"),
  };
  const auto report = evaluate_to_property(tr, {0, 1}, 3, 1000);
  ASSERT_TRUE(report.stability.premise_holds);
  EXPECT_FALSE(report.violations.empty());
}

TEST(TOProperty, VacuousWhenPremiseFails) {
  // Q = {0,1} of 3 with all links good: premise fails; property holds
  // vacuously no matter what the deliveries look like.
  std::vector<TimedEvent> tr{bcast(0, 0, "a")};
  const auto report = evaluate_to_property(tr, {0, 1}, 3, 10);
  EXPECT_FALSE(report.stability.premise_holds);
  EXPECT_TRUE(report.holds_with(0));
}

TEST(TOProperty, IgnoreAfterSkipsUnsettledTail) {
  std::vector<TimedEvent> tr{
      bcast(0, 0, "a"),
      brcv(100, 0, 0, "a"),
      brcv(100, 0, 1, "a"),
      bcast(900, 0, "tail"),  // never delivered, but after the horizon
  };
  const auto ok = evaluate_to_property(tr, {0, 1}, 2, 1000, /*ignore_after=*/500);
  EXPECT_TRUE(ok.holds_with(0));
  const auto bad = evaluate_to_property(tr, {0, 1}, 2, 1000);
  EXPECT_FALSE(bad.holds_with(0));
}

TEST(TOProperty, LagMeasuredOnlyAfterStabilization) {
  // l = 1000 (link event touching Q at that time, restoring goodness).
  std::vector<TimedEvent> tr{
      bcast(500, 0, "early"),
      {1000, sim::StatusEvent{1000, true, 0, 1, sim::Status::kGood}},
      brcv(3000, 0, 0, "early"),
      brcv(3000, 0, 1, "early"),
      bcast(4000, 0, "late"),
      brcv(4100, 0, 0, "late"),
      brcv(4200, 0, 1, "late"),
  };
  const auto report = evaluate_to_property(tr, {0, 1}, 2, 2500);
  ASSERT_TRUE(report.stability.premise_holds);
  EXPECT_EQ(report.stability.l, 1000);
  ASSERT_TRUE(report.required_lprime.has_value());
  EXPECT_EQ(*report.required_lprime, 0);
  // "early" (sent before l + l') is excluded from the measured lag; only
  // "late" counts, with its 200us lag.
  EXPECT_EQ(report.max_delivery_lag, 200);
}

}  // namespace
}  // namespace vsg::props
