// Trace events and recorder: describe() rendering, typed selection, taps,
// timestamping from the simulator clock.

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/simulator.hpp"
#include "trace/events.hpp"
#include "trace/recorder.hpp"

namespace vsg::trace {
namespace {

TEST(Describe, EveryEventKindRenders) {
  const core::View v{core::ViewId{2, 1}, {0, 1}};
  EXPECT_EQ(describe({5, BcastEvent{0, "hi"}}), "@5 bcast(hi)_0");
  EXPECT_EQ(describe({6, BrcvEvent{0, 1, "hi"}}), "@6 brcv(hi)_{0,1}");
  EXPECT_EQ(describe({7, GpsndEvent{2, util::Bytes{0xAB, 0xCD}}}), "@7 gpsnd(abcd)_2");
  EXPECT_EQ(describe({8, GprcvEvent{0, 1, util::Bytes{0xFF}}}), "@8 gprcv(ff)_{0,1}");
  EXPECT_EQ(describe({9, SafeEvent{0, 1, util::Bytes{}}}), "@9 safe()_{0,1}");
  EXPECT_EQ(describe({10, NewViewEvent{1, v}}), "@10 newview(g(2.1){0,1})_1");
  EXPECT_EQ(describe({11, sim::StatusEvent{11, false, 2, kNoProc, sim::Status::kBad}}),
            "@11 bad_2");
  EXPECT_EQ(describe({12, sim::StatusEvent{12, true, 0, 1, sim::Status::kUgly}}),
            "@12 ugly_{0,1}");
}

TEST(Describe, LongPayloadsTruncate) {
  const util::Bytes big(32, 0x11);
  const auto text = describe({0, GpsndEvent{0, big}});
  EXPECT_NE(text.find(".."), std::string::npos);
  EXPECT_LT(text.size(), 40u);
}

TEST(Recorder, StampsWithSimulatorClock) {
  sim::Simulator simulator;
  Recorder recorder(simulator);
  simulator.at(sim::msec(7), [&] { recorder.record(BcastEvent{0, "a"}); });
  simulator.run();
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.events()[0].at, sim::msec(7));
}

TEST(Recorder, SelectFiltersByType) {
  sim::Simulator simulator;
  Recorder recorder(simulator);
  recorder.record(BcastEvent{0, "a"});
  recorder.record(BrcvEvent{0, 1, "a"});
  recorder.record(BcastEvent{1, "b"});
  const auto bcasts = recorder.select<BcastEvent>();
  ASSERT_EQ(bcasts.size(), 2u);
  EXPECT_EQ(bcasts[1].second.a, "b");
  EXPECT_EQ(recorder.select<NewViewEvent>().size(), 0u);
}

TEST(Recorder, TapsFireSynchronouslyInOrder) {
  sim::Simulator simulator;
  Recorder recorder(simulator);
  std::vector<std::string> seen;
  recorder.subscribe([&](const TimedEvent& te) { seen.push_back(describe(te)); });
  recorder.subscribe([&](const TimedEvent&) { seen.push_back("second-tap"); });
  recorder.record(BcastEvent{0, "x"});
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "@0 bcast(x)_0");
  EXPECT_EQ(seen[1], "second-tap");
}

// Regression: a tap that feeds record() back into the same recorder would
// invalidate the TimedEvent reference every other tap holds (vector growth)
// and recurse unboundedly. The recorder detects reentrancy and throws.
TEST(Recorder, RecordFromATapThrows) {
  sim::Simulator simulator;
  Recorder recorder(simulator);
  bool threw = false;
  recorder.subscribe([&](const TimedEvent&) {
    try {
      recorder.record(BcastEvent{1, "reentrant"});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  recorder.record(BcastEvent{0, "outer"});
  EXPECT_TRUE(threw);
  EXPECT_EQ(recorder.size(), 1u) << "the reentrant event must not be stored";
}

TEST(Recorder, ClearFromATapThrows) {
  sim::Simulator simulator;
  Recorder recorder(simulator);
  bool threw = false;
  recorder.subscribe([&](const TimedEvent&) {
    try {
      recorder.clear();
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  recorder.record(BcastEvent{0, "outer"});
  EXPECT_TRUE(threw);
  EXPECT_EQ(recorder.size(), 1u) << "clear() inside a tap must not destroy the event";
}

TEST(Recorder, ClearEmptiesEvents) {
  sim::Simulator simulator;
  Recorder recorder(simulator);
  recorder.record(BcastEvent{0, "x"});
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(EventAccess, AsReturnsNullForOtherTypes) {
  const TimedEvent te{0, BcastEvent{0, "a"}};
  EXPECT_NE(as<BcastEvent>(te), nullptr);
  EXPECT_EQ(as<BrcvEvent>(te), nullptr);
  EXPECT_EQ(as<sim::StatusEvent>(te), nullptr);
}

}  // namespace
}  // namespace vsg::trace
