// The observability primitives: counter/gauge/histogram semantics, the
// registry's get-or-create contract, and the vsg-metrics-v1 JSON
// round-trip (export -> parse gives back an identical snapshot).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/world.hpp"
#include "obs/json_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"

namespace vsg::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, BumpThroughNullPointerIsANoOp) {
  bump(nullptr);  // layers before bind_metrics: must not crash
  Counter c;
  bump(&c, 3);
  EXPECT_EQ(c.value(), 3u);
}

TEST(Gauge, SetAddAndWatermark) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.max_of(5);
  EXPECT_EQ(g.value(), 7) << "max_of keeps the larger value";
  g.max_of(12);
  EXPECT_EQ(g.value(), 12);
}

TEST(Histogram, PlacesSamplesInTheRightBuckets) {
  Histogram h({10, 100, 1000}, Unit::kSimMicros);
  h.observe(5);     // <= 10
  h.observe(10);    // inclusive upper bound -> first bucket
  h.observe(11);    // <= 100
  h.observe(1000);  // <= 1000
  h.observe(5000);  // overflow
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5 + 10 + 11 + 1000 + 5000);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 5000);
}

TEST(Histogram, EmptyExtremesAndQuantileAreZero) {
  Histogram h({10, 100}, Unit::kCount);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.quantile_upper(0.5), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, QuantileUpperWalksBuckets) {
  Histogram h({10, 100, 1000}, Unit::kSimMicros);
  for (int i = 0; i < 9; ++i) h.observe(1);  // 9 samples <= 10
  h.observe(500);                            // 1 sample <= 1000
  EXPECT_EQ(h.quantile_upper(0.5), 10);
  EXPECT_EQ(h.quantile_upper(0.9), 10);
  EXPECT_EQ(h.quantile_upper(0.95), 1000);
  // A sample in the overflow bucket reports the exact max.
  h.observe(99999);
  EXPECT_EQ(h.quantile_upper(1.0), 99999);
}

TEST(Registry, GetOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.inc();
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  // Creating more metrics must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(a.value(), 1u);
}

TEST(Registry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("yes");
  EXPECT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, HistogramKeepsFirstUnitAndBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", Unit::kWallMicros, {1, 2, 3});
  Histogram& again = reg.histogram("lat", Unit::kSimMicros, {99});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.unit(), Unit::kWallMicros);
  EXPECT_EQ(again.bounds(), (std::vector<std::int64_t>{1, 2, 3}));
}

// --- merge_from: the per-World -> campaign registry fold ------------------

TEST(RegistryMerge, CountersGaugesAndHistogramsFold) {
  MetricsRegistry a;
  a.counter("net.packets_sent").inc(10);
  a.gauge("to.order_depth").set(3);
  Histogram& ha = a.histogram("lat", Unit::kSimMicros, {100, 1000});
  ha.observe(50);
  ha.observe(700);

  MetricsRegistry b;
  b.counter("net.packets_sent").inc(5);
  b.counter("ring.token_rotations").inc(2);  // absent in a: created by merge
  b.gauge("to.order_depth").set(4);
  Histogram& hb = b.histogram("lat", Unit::kSimMicros, {100, 1000});
  hb.observe(5000);

  EXPECT_TRUE(a.merge_from(b));
  EXPECT_EQ(a.counter("net.packets_sent").value(), 15u);
  EXPECT_EQ(a.counter("ring.token_rotations").value(), 2u);
  EXPECT_EQ(a.gauge("to.order_depth").value(), 7);  // gauges add
  const Histogram& h = a.histogram("lat");
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 5750);
  EXPECT_EQ(h.min(), 50);
  EXPECT_EQ(h.max(), 5000);
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(RegistryMerge, EmptySourceHistogramLeavesExtremesAlone) {
  MetricsRegistry a;
  a.histogram("lat", Unit::kSimMicros, {10}).observe(5);
  MetricsRegistry b;
  b.histogram("lat", Unit::kSimMicros, {10});  // touched, never observed
  EXPECT_TRUE(a.merge_from(b));
  EXPECT_EQ(a.histogram("lat").count(), 1u);
  EXPECT_EQ(a.histogram("lat").min(), 5);
}

TEST(RegistryMerge, MismatchedHistogramShapeIsRefused) {
  MetricsRegistry a;
  a.histogram("lat", Unit::kSimMicros, {100}).observe(1);
  MetricsRegistry wrong_bounds;
  wrong_bounds.histogram("lat", Unit::kSimMicros, {200}).observe(1);
  MetricsRegistry wrong_unit;
  wrong_unit.histogram("lat", Unit::kWallMicros, {100}).observe(1);

  EXPECT_FALSE(a.merge_from(wrong_bounds));
  EXPECT_FALSE(a.merge_from(wrong_unit));
  // The target series is untouched by the refused merges.
  EXPECT_EQ(a.histogram("lat").count(), 1u);
}

// Seed-order stability: the campaign folds per-World snapshots in seed
// order, and because every merge operation is commutative and associative
// (adds), any fold order gives identical totals — this is what makes
// `--jobs N` metrics bit-identical to `--jobs 1`.
TEST(RegistryMerge, FoldOrderDoesNotChangeTotals) {
  auto make = [](std::uint64_t seed) {
    MetricsRegistry r;
    r.counter("net.packets_sent").inc(seed * 3 + 1);
    r.gauge("watermark").add(static_cast<std::int64_t>(seed));
    r.histogram("lat", Unit::kSimMicros, {100, 1000})
        .observe(static_cast<std::int64_t>(seed * 90));
    return r.snapshot();
  };
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6};

  MetricsRegistry forward;
  for (auto s : seeds) EXPECT_TRUE(forward.merge_from(make(s)));
  MetricsRegistry backward;
  for (auto it = seeds.rbegin(); it != seeds.rend(); ++it)
    EXPECT_TRUE(backward.merge_from(make(*it)));

  EXPECT_EQ(forward.snapshot(), backward.snapshot());
}

TEST(Exporter, RoundTripsAFullRegistry) {
  MetricsRegistry reg;
  reg.counter("net.packets_sent").inc(123);
  reg.counter("ring.token_rotations").inc(7);
  reg.gauge("to.order_depth").set(-4);
  Histogram& h = reg.histogram("to.brcv_latency.all", Unit::kSimMicros, {100, 1000});
  h.observe(50);
  h.observe(5000);

  const std::string json = JsonExporter::to_json(reg, "round-trip");
  EXPECT_EQ(JsonExporter::parse_label(json), "round-trip");
  const auto parsed = JsonExporter::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, reg.snapshot());
}

TEST(Exporter, EscapesMetricNamesInJson) {
  MetricsRegistry reg;
  // A hostile name exercising every escape class the writer knows.
  const std::string name = "evil\"name\\with\nnewline\ttab\x01" "ctl";
  reg.counter(name).inc(9);
  reg.gauge(name + ".g").set(-1);

  const std::string json = JsonExporter::to_json(reg, "esc \"label\"");
  EXPECT_NE(json.find("evil\\\"name\\\\with\\nnewline\\ttab\\u0001ctl"),
            std::string::npos)
      << "name must be emitted with every character escaped";

  // And the reader undoes exactly what the writer did.
  const auto parsed = JsonExporter::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, reg.snapshot());
  EXPECT_EQ(JsonExporter::parse_label(json), "esc \"label\"");
}

TEST(Exporter, EmptyRegistryExportsValidDocument) {
  MetricsRegistry reg;
  const std::string json = JsonExporter::to_json(reg, "");
  const auto parsed = JsonExporter::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(*parsed, reg.snapshot());
  EXPECT_TRUE(parsed->counters.empty());
  EXPECT_TRUE(parsed->gauges.empty());
  EXPECT_TRUE(parsed->histograms.empty());
}

TEST(Exporter, RejectsWrongSchemaAndMalformedInput) {
  EXPECT_FALSE(JsonExporter::parse("not json").has_value());
  EXPECT_FALSE(JsonExporter::parse("{\"schema\": \"something-else\"}").has_value());
  // Histogram whose buckets/bounds sizes disagree.
  EXPECT_FALSE(JsonExporter::parse(
                   "{\"schema\":\"vsg-metrics-v1\",\"counters\":{},\"gauges\":{},"
                   "\"histograms\":{\"h\":{\"unit\":\"us_sim\",\"count\":0,\"sum\":0,"
                   "\"min\":0,\"max\":0,\"bounds\":[1,2],\"buckets\":[0,0]}}}")
                   .has_value());
}

TEST(Exporter, ExportPathFromArgs) {
  {
    const char* argv[] = {"bench", "--export", "out.json"};
    const auto p = export_path_from_args(3, const_cast<char**>(argv));
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, "out.json");
  }
  {
    const char* argv[] = {"bench", "--export=eq.json"};
    const auto p = export_path_from_args(2, const_cast<char**>(argv));
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, "eq.json");
  }
  {
    const char* argv[] = {"bench"};
    EXPECT_FALSE(export_path_from_args(1, const_cast<char**>(argv)).has_value());
  }
}

TEST(Stopwatch, ObservesIntoWallHistogram) {
  Histogram h({1000000}, Unit::kWallMicros);
  { ScopedWallTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0);
}

// A full World run populates the layered metric names the docs promise.
TEST(WorldMetrics, LayersReportIntoTheSharedRegistry) {
  harness::WorldConfig cfg;
  cfg.n = 3;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = 77;
  harness::World world(cfg);
  for (ProcId p = 0; p < 3; ++p) world.bcast_at(sim::msec(100), p, "m");
  world.run_until(sim::sec(2));

  const auto& m = world.metrics();
  for (const char* name :
       {"net.packets_sent", "net.packets_delivered", "net.bytes_sent",
        "ring.token_rotations", "ring.views_installed", "ring.state_exchange_bytes",
        "vs.gpsnd", "vs.gprcv", "vs.safe", "to.labels_assigned", "to.values_sent",
        "to.payload_moves"}) {
    const auto* c = m.find_counter(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_GT(c->value(), 0u) << name;
  }
  const auto* lat = m.find_histogram("to.brcv_latency.all");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 9u) << "3 values delivered at 3 processors";
  EXPECT_GT(lat->min(), 0);

  // The registry snapshot survives a JSON round trip byte-for-value.
  const auto parsed = JsonExporter::parse(JsonExporter::to_json(m, "world"));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, m.snapshot());
}

// Two worlds can share one registry (the bench sweep pattern).
TEST(WorldMetrics, SharedRegistryAccumulatesAcrossWorlds) {
  auto shared = std::make_shared<MetricsRegistry>();
  std::uint64_t after_first = 0;
  for (int run = 0; run < 2; ++run) {
    harness::WorldConfig cfg;
    cfg.n = 2;
    cfg.backend = harness::Backend::kTokenRing;
    cfg.seed = 5 + static_cast<std::uint64_t>(run);
    cfg.metrics = shared;
    harness::World world(cfg);
    world.bcast_at(sim::msec(50), 0, "x");
    world.run_until(sim::sec(1));
    if (run == 0) after_first = shared->find_counter("net.packets_sent")->value();
  }
  EXPECT_GT(after_first, 0u);
  EXPECT_GT(shared->find_counter("net.packets_sent")->value(), after_first)
      << "second world kept accumulating into the same counters";
}

TEST(WorldConfig, ValidateRejectsBadShapes) {
  harness::WorldConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(harness::World{cfg}, std::invalid_argument);
  cfg.n = -2;
  EXPECT_THROW(harness::World{cfg}, std::invalid_argument);
  cfg.n = 3;
  cfg.n0 = 4;  // more initial members than processors
  EXPECT_THROW(harness::World{cfg}, std::invalid_argument);
  cfg.n0 = 0;
  EXPECT_THROW(harness::World{cfg}, std::invalid_argument);
  cfg.n0 = -1;

  // A quorum system over the wrong universe can never admit a primary.
  auto wrong = std::make_shared<core::ExplicitQuorums>(
      std::vector<std::set<ProcId>>{{3, 4}});
  cfg.quorums = wrong;
  EXPECT_THROW(harness::World{cfg}, std::invalid_argument);
  cfg.quorums = nullptr;

  cfg.backend = harness::Backend::kTokenRing;
  cfg.ring.pi = 0;
  EXPECT_THROW(harness::World{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace vsg::obs
