// Sharded World: K independent VStoTO stacks over one simulator, failure
// table and network. The contracts under test: shards deliver independently
// (no cross-shard ordering or leakage), per-shard traces satisfy the
// single-stack safety checkers unchanged, collect_shard_metrics folds the
// per-shard registries into aggregate + "shard<k>." views, and the config
// validation rejects every degenerate shard topology loudly.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "harness/world.hpp"

namespace vsg::harness {
namespace {

WorldConfig sharded_config(int shards, std::uint64_t seed = 5) {
  WorldConfig cfg;
  cfg.n = 3;
  cfg.shards = shards;
  cfg.seed = seed;
  return cfg;
}

TEST(ShardedWorld, ValidationRejectsDegenerateTopologies) {
  EXPECT_THROW(sharded_config(0).validate(), std::invalid_argument);
  EXPECT_THROW(sharded_config(kMaxShards + 1).validate(), std::invalid_argument);

  WorldConfig spec = sharded_config(2);
  spec.backend = Backend::kSpec;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  WorldConfig mismatched = sharded_config(3);
  mismatched.shard_rings.resize(2);  // 2 overrides for 3 shards
  EXPECT_THROW(mismatched.validate(), std::invalid_argument);

  EXPECT_NO_THROW(sharded_config(1).validate());
  EXPECT_NO_THROW(sharded_config(kMaxShards).validate());
}

TEST(ShardedWorld, BcastShardAtRejectsOutOfRangeShards) {
  World world(sharded_config(2));
  EXPECT_THROW(world.bcast_shard_at(sim::sec(1), -1, 0, "a"), std::invalid_argument);
  EXPECT_THROW(world.bcast_shard_at(sim::sec(1), 2, 0, "a"), std::invalid_argument);
  EXPECT_NO_THROW(world.bcast_shard_at(sim::sec(1), 1, 0, "a"));
}

TEST(ShardedWorld, ShardsDeliverIndependentlyWithoutLeakage) {
  World world(sharded_config(2));
  world.bcast_shard_at(sim::sec(1), 0, 0, "a0");
  world.bcast_shard_at(sim::sec(1), 0, 1, "b0");
  world.bcast_shard_at(sim::sec(1), 1, 2, "c1");
  world.run_until(sim::sec(15));

  // Every processor of shard 0 delivered exactly {a0, b0} (in the shard's
  // one order), shard 1 exactly {c1} — nothing crossed over.
  for (ProcId p = 0; p < 3; ++p) {
    const auto& d0 = world.stack(0).process(p).delivered();
    ASSERT_EQ(d0.size(), 2u) << "shard 0 at p" << p;
    EXPECT_EQ(d0, world.stack(0).process(0).delivered()) << "p" << p;
    const auto& d1 = world.stack(1).process(p).delivered();
    ASSERT_EQ(d1.size(), 1u) << "shard 1 at p" << p;
    EXPECT_EQ(d1.front().second, "c1");
  }

  // The single-stack safety checkers apply per shard unchanged.
  for (int k = 0; k < 2; ++k) {
    EXPECT_TRUE(world.check_to_safety(k).empty()) << "shard " << k;
    EXPECT_TRUE(world.check_vs_safety(k).empty()) << "shard " << k;
  }
  // Distinct recorders: shard 1 recorded one bcast, shard 0 two.
  EXPECT_NE(&world.recorder(0), &world.recorder(1));
}

TEST(ShardedWorld, CollectShardMetricsBuildsAggregateAndPerShardViews) {
  World world(sharded_config(2));
  world.bcast_shard_at(sim::sec(1), 0, 0, "a");
  world.bcast_shard_at(sim::sec(1), 1, 1, "b");
  world.run_until(sim::sec(15));
  world.collect_shard_metrics();
  auto& m = world.metrics();

  const auto* shard0 = m.find_counter("shard0.ring.entries_delivered");
  const auto* shard1 = m.find_counter("shard1.ring.entries_delivered");
  const auto* total = m.find_counter("ring.entries_delivered");
  ASSERT_NE(shard0, nullptr);
  ASSERT_NE(shard1, nullptr);
  ASSERT_NE(total, nullptr);
  // One bcast per shard, delivered at all 3 processors.
  EXPECT_EQ(shard0->value(), 3u);
  EXPECT_EQ(shard1->value(), 3u);
  EXPECT_EQ(total->value(), shard0->value() + shard1->value())
      << "aggregate must be the exact sum of the shard views";

  // Idempotent: a second collect must not double the totals.
  world.collect_shard_metrics();
  EXPECT_EQ(m.counter("ring.entries_delivered").value(), 6u);
}

TEST(ShardedWorld, SingleShardBindsUnprefixedIntoTheMainRegistry) {
  World world(sharded_config(1));
  world.bcast_at(sim::sec(1), 0, "a");
  world.run_until(sim::sec(10));
  world.collect_shard_metrics();  // no-op for K=1
  auto& m = world.metrics();
  EXPECT_EQ(&world.shard_metrics(0), &m) << "K=1 layers bind directly";
  EXPECT_EQ(m.find_counter("shard0.ring.entries_delivered"), nullptr)
      << "no shard prefix may appear in a single-shard world";
  ASSERT_NE(m.find_counter("ring.entries_delivered"), nullptr);
  EXPECT_EQ(m.counter("ring.entries_delivered").value(), 3u);
}

TEST(ShardedWorld, PerShardRingOverridesApply) {
  WorldConfig cfg = sharded_config(2);
  membership::TokenRingConfig slow;
  slow.pi = sim::msec(400);
  membership::TokenRingConfig fast;
  fast.pi = sim::msec(10);
  cfg.shard_rings = {slow, fast};
  World world(cfg);
  ASSERT_NE(world.token_ring(0), nullptr);
  ASSERT_NE(world.token_ring(1), nullptr);
  EXPECT_EQ(world.token_ring(0)->config().pi, sim::msec(400));
  EXPECT_EQ(world.token_ring(1)->config().pi, sim::msec(10));
  // The harness owns the port assignment (= shard index), regardless of
  // what the override said.
  EXPECT_EQ(world.token_ring(0)->config().port, 0);
  EXPECT_EQ(world.token_ring(1)->config().port, 1);
}

TEST(ShardedWorld, SameSeedSameDeliveriesAcrossRuns) {
  auto run = [](int shards) {
    World world(sharded_config(shards, 99));
    world.bcast_shard_at(sim::sec(1), 0, 0, "x");
    if (shards > 1) world.bcast_shard_at(sim::sec(1), 1, 1, "y");
    world.partition_at(sim::sec(2), {{0}, {1, 2}});
    world.heal_at(sim::sec(4));
    world.run_until(sim::sec(20));
    std::string digest;
    for (int k = 0; k < world.shards(); ++k)
      for (ProcId p = 0; p < 3; ++p)
        for (const auto& [origin, value] : world.stack(k).process(p).delivered())
          digest += std::to_string(k) + ":" + std::to_string(p) + ":" +
                    std::to_string(origin) + ":" + std::string(value.begin(), value.end()) + ";";
    return digest;
  };
  EXPECT_EQ(run(2), run(2)) << "sharded worlds must stay deterministic";
}

}  // namespace
}  // namespace vsg::harness
