// Labels (Figure 8): lexicographic order on (viewid, seqno, origin) —
// the basis of the system-wide unique naming of client values.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/label.hpp"

namespace vsg::core {
namespace {

TEST(Label, ViewIdDominates) {
  Label a{ViewId{1, 0}, 99, 5};
  Label b{ViewId{2, 0}, 1, 0};
  EXPECT_LT(a, b);
}

TEST(Label, SeqnoBreaksViewTies) {
  Label a{ViewId{1, 0}, 1, 5};
  Label b{ViewId{1, 0}, 2, 0};
  EXPECT_LT(a, b);
}

TEST(Label, OriginBreaksSeqnoTies) {
  Label a{ViewId{1, 0}, 1, 0};
  Label b{ViewId{1, 0}, 1, 1};
  EXPECT_LT(a, b);
}

TEST(Label, TotalOrderSortsDeterministically) {
  std::vector<Label> ls{
      {ViewId{2, 0}, 1, 0}, {ViewId{1, 0}, 2, 1}, {ViewId{1, 0}, 1, 1}, {ViewId{1, 0}, 1, 0}};
  std::sort(ls.begin(), ls.end());
  EXPECT_EQ(ls[0], (Label{ViewId{1, 0}, 1, 0}));
  EXPECT_EQ(ls[1], (Label{ViewId{1, 0}, 1, 1}));
  EXPECT_EQ(ls[2], (Label{ViewId{1, 0}, 2, 1}));
  EXPECT_EQ(ls[3], (Label{ViewId{2, 0}, 1, 0}));
}

TEST(Label, LabelsOfOneSenderInOneViewAreSeqnoOrdered) {
  // The per-(processor, view) uniqueness of seqnos makes labels unique; the
  // label order then matches submission order.
  std::vector<Label> ls;
  for (std::uint32_t k = 1; k <= 5; ++k) ls.push_back(Label{ViewId{3, 1}, k, 2});
  EXPECT_TRUE(std::is_sorted(ls.begin(), ls.end()));
}

TEST(Label, SerdeRoundTrip) {
  const Label l{ViewId{123456789, 7}, 42, 3};
  util::Encoder e;
  encode(e, l);
  const auto buf = e.take();
  util::Decoder d(buf);
  EXPECT_EQ(decode_label(d), l);
  EXPECT_TRUE(d.complete());
}

TEST(Label, ToStringMentionsAllComponents) {
  const auto s = to_string(Label{ViewId{2, 1}, 7, 3});
  EXPECT_NE(s.find("g(2.1)"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("3"), std::string::npos);
}

}  // namespace
}  // namespace vsg::core
