// VS-property(b, d, Q) evaluation on hand-built timed traces.

#include <gtest/gtest.h>

#include "props/vs_property.hpp"

namespace vsg::props {
namespace {

using trace::GpsndEvent;
using trace::NewViewEvent;
using trace::SafeEvent;
using trace::TimedEvent;

util::Bytes b(std::uint8_t x) { return util::Bytes{x}; }

core::View qview(std::uint64_t epoch, std::set<ProcId> members) {
  return core::View{core::ViewId{epoch, *members.begin()}, std::move(members)};
}

std::vector<TimedEvent> cut_links(sim::Time at, std::initializer_list<ProcId> q, int n) {
  std::vector<TimedEvent> tr;
  const std::set<ProcId> qs(q);
  for (ProcId p : qs)
    for (ProcId r = 0; r < n; ++r)
      if (qs.count(r) == 0) {
        tr.push_back({at, sim::StatusEvent{at, true, p, r, sim::Status::kBad}});
        tr.push_back({at, sim::StatusEvent{at, true, r, p, sim::Status::kBad}});
      }
  return tr;
}

TEST(VSProperty, ConvergedViewAndTimelySafes) {
  const auto v = qview(3, {0, 1});
  auto tr = cut_links(100, {0, 1}, 3);
  tr.push_back({300, NewViewEvent{0, v}});
  tr.push_back({350, NewViewEvent{1, v}});
  tr.push_back({1000, GpsndEvent{0, b(1)}});
  tr.push_back({1400, SafeEvent{0, 0, b(1)}});
  tr.push_back({1500, SafeEvent{0, 1, b(1)}});

  const auto report = evaluate_vs_property(tr, {0, 1}, 3, 3, /*d=*/600);
  ASSERT_TRUE(report.stability.premise_holds) << report.stability.why_not;
  EXPECT_EQ(report.stability.l, 100);
  EXPECT_TRUE(report.views_converged);
  EXPECT_EQ(report.final_view, v);
  ASSERT_TRUE(report.required_lprime.has_value());
  EXPECT_EQ(*report.required_lprime, 250);  // last newview at 350, l = 100
  EXPECT_TRUE(report.holds_with(250));
  EXPECT_FALSE(report.holds_with(249));
  EXPECT_EQ(report.max_safe_lag, 500);
}

TEST(VSProperty, WrongFinalMembershipFails) {
  const auto v = qview(3, {0, 1, 2});  // includes 2, but Q = {0,1}
  auto tr = cut_links(100, {0, 1}, 3);
  tr.push_back({300, NewViewEvent{0, v}});
  tr.push_back({300, NewViewEvent{1, v}});
  const auto report = evaluate_vs_property(tr, {0, 1}, 3, 3, 600);
  ASSERT_TRUE(report.stability.premise_holds);
  EXPECT_FALSE(report.views_converged);
  EXPECT_FALSE(report.holds_with(1000000));
}

TEST(VSProperty, DisagreeingViewsFail) {
  auto tr = cut_links(100, {0, 1}, 3);
  tr.push_back({300, NewViewEvent{0, qview(3, {0, 1})}});
  tr.push_back({300, NewViewEvent{1, qview(4, {0, 1})}});
  const auto report = evaluate_vs_property(tr, {0, 1}, 3, 3, 600);
  EXPECT_FALSE(report.views_converged);
}

TEST(VSProperty, MissingSafeIsViolation) {
  const auto v = qview(3, {0, 1});
  auto tr = cut_links(100, {0, 1}, 3);
  tr.push_back({300, NewViewEvent{0, v}});
  tr.push_back({300, NewViewEvent{1, v}});
  tr.push_back({1000, GpsndEvent{0, b(1)}});
  tr.push_back({1100, SafeEvent{0, 0, b(1)}});  // never safe at 1
  const auto report = evaluate_vs_property(tr, {0, 1}, 3, 3, 600);
  EXPECT_FALSE(report.required_lprime.has_value());
  EXPECT_FALSE(report.holds_with(1000000));
}

TEST(VSProperty, MessagesInOlderViewsDoNotCount) {
  const auto v_old = qview(2, {0, 1, 2});
  const auto v = qview(3, {0, 1});
  std::vector<TimedEvent> tr;
  tr.push_back({10, NewViewEvent{0, v_old}});
  tr.push_back({10, NewViewEvent{1, v_old}});
  tr.push_back({20, GpsndEvent{0, b(9)}});  // in v_old; never safe — fine
  auto cuts = cut_links(100, {0, 1}, 3);
  tr.insert(tr.end(), cuts.begin(), cuts.end());
  tr.push_back({300, NewViewEvent{0, v}});
  tr.push_back({300, NewViewEvent{1, v}});
  const auto report = evaluate_vs_property(tr, {0, 1}, 3, 3, 600);
  ASSERT_TRUE(report.stability.premise_holds);
  EXPECT_TRUE(report.views_converged);
  ASSERT_TRUE(report.required_lprime.has_value());
  EXPECT_TRUE(report.holds_with(200));
}

TEST(VSProperty, LateNewviewPushesLPrime) {
  const auto v = qview(3, {0, 1});
  auto tr = cut_links(100, {0, 1}, 3);
  tr.push_back({300, NewViewEvent{0, v}});
  tr.push_back({5000, NewViewEvent{1, v}});  // straggler
  const auto report = evaluate_vs_property(tr, {0, 1}, 3, 3, 600);
  ASSERT_TRUE(report.required_lprime.has_value());
  EXPECT_EQ(*report.required_lprime, 4900);
}

TEST(VSProperty, VacuousWhenPremiseFails) {
  std::vector<TimedEvent> tr;  // everything good, Q proper subset
  const auto report = evaluate_vs_property(tr, {0, 1}, 3, 3, 100);
  EXPECT_FALSE(report.stability.premise_holds);
  EXPECT_TRUE(report.holds_with(0));
}

TEST(VSProperty, SingletonComponentNeedsItsOwnView) {
  auto tr = cut_links(50, {2}, 3);
  const auto no_view = evaluate_vs_property(tr, {2}, 3, 3, 100);
  ASSERT_TRUE(no_view.stability.premise_holds);
  EXPECT_FALSE(no_view.views_converged) << "still in the initial 3-member view";

  tr.push_back({200, NewViewEvent{2, qview(5, {2})}});
  const auto with_view = evaluate_vs_property(tr, {2}, 3, 3, 100);
  EXPECT_TRUE(with_view.views_converged);
  EXPECT_TRUE(with_view.holds_with(150));
}

}  // namespace
}  // namespace vsg::props
