// Malformed-scenario validation: World's scheduling helpers (and
// Scenario::apply through them) reject bad processor ids and bad partition
// component sets eagerly, with descriptive errors — one test per rejection.

#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace vsg::harness {
namespace {

World make_world(int n = 4) {
  WorldConfig cfg;
  cfg.n = n;
  return World(cfg);
}

// EXPECT_THROW plus a substring check on the message, so the errors stay
// descriptive and not just typed.
template <typename Fn>
void expect_rejected(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument containing '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(WorldValidation, PartitionEmptyComponentList) {
  auto w = make_world();
  expect_rejected([&] { w.partition_at(0, {}); }, "component list is empty");
}

TEST(WorldValidation, PartitionEmptyComponent) {
  auto w = make_world();
  expect_rejected([&] { w.partition_at(0, {{0, 1, 2, 3}, {}}); }, "is empty");
}

TEST(WorldValidation, PartitionOutOfRangeProcessor) {
  auto w = make_world();
  expect_rejected([&] { w.partition_at(0, {{0, 1}, {2, 3, 4}}); }, "out of range");
}

TEST(WorldValidation, PartitionNegativeProcessor) {
  auto w = make_world();
  expect_rejected([&] { w.partition_at(0, {{-1, 0, 1, 2, 3}}); }, "out of range");
}

TEST(WorldValidation, PartitionOverlappingComponents) {
  auto w = make_world();
  expect_rejected([&] { w.partition_at(0, {{0, 1, 2}, {2, 3}}); },
                  "more than one component");
}

TEST(WorldValidation, PartitionMustCoverAllProcessors) {
  auto w = make_world();
  // The old silent footgun: {{0,1}} looks like "cut 0,1 off" but dropped
  // 2 and 3 entirely. Now it must be spelled with explicit singletons.
  expect_rejected([&] { w.partition_at(0, {{0, 1}}); }, "is in no component");
}

TEST(WorldValidation, PartitionSingletonsAreFine) {
  auto w = make_world();
  EXPECT_NO_THROW(w.partition_at(0, {{0, 1}, {2}, {3}}));
}

TEST(WorldValidation, ValidatePartitionStandalone) {
  EXPECT_NO_THROW(World::validate_partition(3, {{0}, {1, 2}}));
  EXPECT_THROW(World::validate_partition(3, {{0, 1}}), std::invalid_argument);
}

TEST(WorldValidation, BcastBadProcessor) {
  auto w = make_world();
  expect_rejected([&] { w.bcast_at(0, 4, "x"); }, "out of range");
  expect_rejected([&] { w.bcast_at(0, -1, "x"); }, "out of range");
}

TEST(WorldValidation, ProcStatusBadProcessor) {
  auto w = make_world();
  expect_rejected([&] { w.proc_status_at(0, 9, sim::Status::kBad); }, "out of range");
}

TEST(WorldValidation, LinkStatusBadEndpoints) {
  auto w = make_world();
  expect_rejected([&] { w.link_status_at(0, 5, 1, sim::Status::kBad); }, "out of range");
  expect_rejected([&] { w.link_status_at(0, 1, 5, sim::Status::kBad); }, "out of range");
  expect_rejected([&] { w.link_status_at(0, 2, 2, sim::Status::kBad); }, "self-link");
}

TEST(WorldValidation, ScenarioApplyPropagatesRejection) {
  auto w = make_world();
  Scenario s;
  s.add(sim::msec(10), OpBcast{0, "ok"});
  s.add(sim::msec(20), OpPartition{{{0, 1}}});  // non-covering
  EXPECT_THROW(s.apply(w), std::invalid_argument);
}

TEST(WorldValidation, RejectionIsEagerNotAtRunTime) {
  auto w = make_world();
  // partition_at throws immediately; nothing runs, the world stays usable.
  EXPECT_THROW(w.partition_at(sim::sec(1), {{0}}), std::invalid_argument);
  EXPECT_NO_THROW(w.bcast_at(sim::msec(1), 0, "still-alive"));
  w.run_until(sim::sec(2));
  EXPECT_TRUE(w.check_to_safety().empty());
}

TEST(FailureTableValidation, MutatorsThrowOnBadIds) {
  sim::FailureTable ft(3);
  EXPECT_THROW(ft.set_proc(3, sim::Status::kBad, 0), std::invalid_argument);
  EXPECT_THROW(ft.set_proc(-1, sim::Status::kBad, 0), std::invalid_argument);
  EXPECT_THROW(ft.set_link(0, 3, sim::Status::kBad, 0), std::invalid_argument);
  EXPECT_THROW(ft.set_link(1, 1, sim::Status::kBad, 0), std::invalid_argument);
  EXPECT_THROW(ft.partition({{0, 1}, {1, 2}}, 0), std::invalid_argument);
  EXPECT_THROW(ft.partition({{0, 5}}, 0), std::invalid_argument);
  // FailureTable keeps the documented "absent = isolated" semantics; the
  // covering requirement is World-level.
  EXPECT_NO_THROW(ft.partition({{0, 1}}, 0));
}

}  // namespace
}  // namespace vsg::harness
