// Ordered shared log over the full stack.

#include <gtest/gtest.h>

#include "app/ordered_log.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig cfg_for(Backend backend, int n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = backend;
  cfg.seed = seed;
  return cfg;
}

class OrderedLogTest : public ::testing::TestWithParam<Backend> {};

TEST_P(OrderedLogTest, AppendsShowUpEverywhereInOneOrder) {
  World world(cfg_for(GetParam(), 3, 10));
  app::OrderedLog log(world.stack());
  for (int k = 0; k < 6; ++k)
    world.simulator().at(sim::msec(10 + 5 * k), [&log, k] {
      log.append(static_cast<ProcId>(k % 3), "entry" + std::to_string(k));
    });
  world.run_until(sim::sec(3));

  EXPECT_TRUE(log.prefix_consistent());
  ASSERT_EQ(log.log(0).size(), 6u);
  for (ProcId p = 1; p < 3; ++p) EXPECT_EQ(log.log(p), log.log(0));
}

TEST_P(OrderedLogTest, AuthorsRecordedCorrectly) {
  World world(cfg_for(GetParam(), 2, 11));
  app::OrderedLog log(world.stack());
  world.simulator().at(sim::msec(5), [&] { log.append(1, "from-one"); });
  world.run_until(sim::sec(2));
  ASSERT_EQ(log.log(0).size(), 1u);
  EXPECT_EQ(log.log(0)[0].author, 1);
  EXPECT_EQ(log.log(0)[0].text, "from-one");
}

TEST_P(OrderedLogTest, PrefixConsistencyThroughPartition) {
  World world(cfg_for(GetParam(), 5, 12));
  app::OrderedLog log(world.stack());
  world.partition_at(sim::msec(100), {{0, 1, 2}, {3, 4}});
  world.simulator().at(sim::sec(1), [&] { log.append(0, "maj-entry"); });
  world.simulator().at(sim::sec(1), [&] { log.append(3, "min-entry"); });
  world.run_until(sim::sec(4));
  EXPECT_TRUE(log.prefix_consistent());
  EXPECT_EQ(log.log(0).size(), 1u);
  EXPECT_TRUE(log.log(3).empty());

  world.heal_at(sim::sec(4));
  world.run_until(sim::sec(10));
  EXPECT_TRUE(log.prefix_consistent());
  EXPECT_EQ(log.log(3).size(), 2u) << "minority catches up with both entries";
  EXPECT_EQ(log.log(3), log.log(0));
}

INSTANTIATE_TEST_SUITE_P(BothBackends, OrderedLogTest,
                         ::testing::Values(Backend::kSpec, Backend::kTokenRing),
                         [](const auto& info) {
                           return info.param == Backend::kSpec ? "SpecVS" : "TokenRing";
                         });

TEST(OrderedLog, EmptyLogsAreConsistent) {
  World world(cfg_for(Backend::kSpec, 2, 13));
  app::OrderedLog log(world.stack());
  EXPECT_TRUE(log.prefix_consistent());
  EXPECT_TRUE(log.log(0).empty());
}

}  // namespace
}  // namespace vsg
