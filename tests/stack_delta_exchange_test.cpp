// Digest/delta state exchange end to end (docs/WIRE.md, "v3 state
// exchange"): a wire-v3 world runs the two-phase protocol — digest
// broadcast, then one delta against the meet of all digests — and must
// deliver exactly what the full-summary wire-v2 world delivers on the same
// seed, while moving an order of magnitude fewer exchange bytes through
// crash/rejoin churn.

#include <gtest/gtest.h>

#include <map>

#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig config(membership::WireFormat wire, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = Backend::kTokenRing;
  cfg.ring.wire = wire;
  cfg.seed = seed;
  return cfg;
}

// Crash/rejoin churn with steady traffic; returns the world for counter and
// delivery inspection.
void churn(World& world) {
  const int n = world.n();
  for (sim::Time t = sim::msec(200); t < sim::sec(6); t += sim::msec(150))
    for (ProcId p = 0; p < n; ++p) world.bcast_at(t, p, "m" + std::to_string(t / 1000));
  int cycle = 0;
  for (sim::Time t = sim::sec(1); t < sim::sec(5); t += sim::msec(1200)) {
    const ProcId victim = 1 + static_cast<ProcId>(cycle++ % (n - 1));
    world.proc_status_at(t, victim, sim::Status::kBad);
    world.proc_status_at(t + sim::msec(800), victim, sim::Status::kGood);
  }
  world.run_until(sim::sec(12));
}

TEST(DeltaExchange, V3WorldSelectsDigestDeltaModeV2StaysFullSummary) {
  World v2(config(membership::WireFormat::kV2, 5));
  World v3(config(membership::WireFormat::kV3, 5));
  EXPECT_EQ(v2.stack().process(0).exchange_mode(), vstoto::ExchangeMode::kFullSummary);
  EXPECT_EQ(v3.stack().process(0).exchange_mode(), vstoto::ExchangeMode::kDigestDelta);
}

TEST(DeltaExchange, SpecBackendStaysFullSummary) {
  WorldConfig cfg;
  cfg.backend = Backend::kSpec;
  World world(cfg);
  EXPECT_EQ(world.stack().process(0).exchange_mode(), vstoto::ExchangeMode::kFullSummary);
}

TEST(DeltaExchange, SameDeliveriesThroughCrashRejoinChurn) {
  World v2(config(membership::WireFormat::kV2, 91));
  World v3(config(membership::WireFormat::kV3, 91));
  churn(v2);
  churn(v3);

  // Identical client outcome at quiescence: every processor delivered the
  // same multiset of (origin, value) pairs under both exchange protocols.
  // (The chosen total order may differ — establishment lands a couple of
  // token laps later in delta mode — so compare content, not order.)
  for (ProcId p = 0; p < v2.n(); ++p) {
    auto v2d = v2.stack().process(p).delivered();
    auto v3d = v3.stack().process(p).delivered();
    std::map<std::pair<ProcId, core::Value>, int> a, b;
    for (const auto& d : v2d) ++a[d];
    for (const auto& d : v3d) ++b[d];
    EXPECT_EQ(a, b) << "processor " << p;
  }
  EXPECT_TRUE(v2.check_to_safety().empty());
  EXPECT_TRUE(v3.check_to_safety().empty());
}

TEST(DeltaExchange, DigestAndDeltaCountersMoveOnlyUnderV3) {
  World v2(config(membership::WireFormat::kV2, 91));
  World v3(config(membership::WireFormat::kV3, 91));
  churn(v2);
  churn(v3);

  const auto count = [](const World& w, const std::string& name) -> std::uint64_t {
    const auto* c = w.metrics().find_counter(name);
    return c == nullptr ? 0 : c->value();
  };
  EXPECT_GT(count(v2, "to.summaries_sent"), 0u);
  EXPECT_EQ(count(v2, "to.digests_sent"), 0u);
  EXPECT_EQ(count(v2, "to.deltas_sent"), 0u);

  EXPECT_EQ(count(v3, "to.summaries_sent"), 0u);
  EXPECT_GT(count(v3, "to.digests_sent"), 0u);
  EXPECT_GT(count(v3, "to.deltas_sent"), 0u);
  // One delta per member per completed collection; digests outnumber them.
  EXPECT_GE(count(v3, "to.digests_sent"), count(v3, "to.deltas_sent"));

  // The membership layer's payload census agrees with the process counters.
  EXPECT_GT(count(v2, "ring.state_exchange_bytes.summary"), 0u);
  EXPECT_EQ(count(v2, "ring.state_exchange_bytes.digest"), 0u);
  EXPECT_EQ(count(v3, "ring.state_exchange_bytes.summary"), 0u);
  EXPECT_GT(count(v3, "ring.state_exchange_bytes.digest"), 0u);
  EXPECT_GT(count(v3, "ring.state_exchange_bytes.delta"), 0u);
}

TEST(DeltaExchange, ExchangeBytesDropByAnOrderOfMagnitude) {
  World v2(config(membership::WireFormat::kV2, 91));
  World v3(config(membership::WireFormat::kV3, 91));
  churn(v2);
  churn(v3);
  const auto* bc = v2.metrics().find_counter("ring.state_exchange_bytes");
  const auto* ac = v3.metrics().find_counter("ring.state_exchange_bytes");
  ASSERT_NE(bc, nullptr);
  ASSERT_NE(ac, nullptr);
  const std::uint64_t before = bc->value();
  const std::uint64_t after = ac->value();
  ASSERT_GT(after, 0u);
  EXPECT_GE(before / after, 5u)
      << "summaries grow with history, digests/deltas do not: " << before << " vs " << after;
}

}  // namespace
}  // namespace vsg
