// Sequentially consistent replicated KV store (footnote 3) over the full
// stack, validated by the independent SeqCstChecker.

#include <gtest/gtest.h>

#include "app/replicated_kv.hpp"
#include "app/seqcst_checker.hpp"
#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig cfg_for(Backend backend, int n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = backend;
  cfg.seed = seed;
  return cfg;
}

TEST(ReplicatedKV, WriteEncodingRoundTrip) {
  const auto enc = app::encode_write("key", "value");
  const auto dec = app::decode_write(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->first, "key");
  EXPECT_EQ(dec->second, "value");
  EXPECT_FALSE(app::decode_write("not an encoded write").has_value());
}

class ReplicatedKVTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ReplicatedKVTest, WritePropagatesToAllReplicas) {
  World world(cfg_for(GetParam(), 3, 3));
  app::ReplicatedKV kv(world.stack());
  world.simulator().at(sim::msec(10), [&] { kv.write(0, "x", "1"); });
  world.run_until(sim::sec(2));
  for (ProcId p = 0; p < 3; ++p)
    EXPECT_EQ(kv.read(p, "x"), std::optional<std::string>("1")) << "at replica " << p;
}

TEST_P(ReplicatedKVTest, ReadsBeforeApplyAreLocal) {
  World world(cfg_for(GetParam(), 3, 4));
  app::ReplicatedKV kv(world.stack());
  EXPECT_FALSE(kv.read(0, "x").has_value());
  kv.write(0, "x", "1");
  // The write is in flight: the local replica has not applied it yet.
  EXPECT_EQ(kv.writes_in_flight(0), 1u);
  world.run_until(sim::sec(2));
  EXPECT_EQ(kv.writes_in_flight(0), 0u);
  EXPECT_EQ(kv.read(0, "x"), std::optional<std::string>("1"));
}

TEST_P(ReplicatedKVTest, ConcurrentWritersConvergeToSameStore) {
  World world(cfg_for(GetParam(), 4, 5));
  app::ReplicatedKV kv(world.stack());
  for (int k = 0; k < 5; ++k) {
    world.simulator().at(sim::msec(10 + 7 * k), [&kv, k] {
      kv.write(0, "k" + std::to_string(k % 3), "a" + std::to_string(k));
      kv.write(2, "k" + std::to_string(k % 3), "c" + std::to_string(k));
    });
  }
  world.run_until(sim::sec(3));
  for (ProcId p = 1; p < 4; ++p) EXPECT_EQ(kv.store(p), kv.store(0));
  EXPECT_EQ(kv.applied(0).size(), 10u);
}

TEST_P(ReplicatedKVTest, HistoryIsSequentiallyConsistent) {
  World world(cfg_for(GetParam(), 3, 6));
  app::ReplicatedKV kv(world.stack());
  app::SeqCstChecker checker(3);

  // Random-ish workload with interleaved reads, observations fed live.
  util::Rng rng(99);
  for (int k = 0; k < 30; ++k) {
    const auto p = static_cast<ProcId>(rng.below(3));
    const auto key = "k" + std::to_string(rng.below(4));
    world.simulator().at(sim::msec(5 * k + 1), [&, p, key, k] {
      if (k % 3 == 0) {
        const auto result = kv.read(p, key);
        checker.on_read(p, key, result, kv.applied(p).size());
      } else {
        const auto value = "v" + std::to_string(k);
        checker.on_submit(p, key, value);
        kv.write(p, key, value);
      }
    });
  }
  // Tap applies as they happen, in order, via polling between events.
  std::vector<std::size_t> seen(3, 0);
  while (world.simulator().now() < sim::sec(3) && world.simulator().step()) {
    for (ProcId p = 0; p < 3; ++p)
      while (seen[static_cast<std::size_t>(p)] < kv.applied(p).size()) {
        checker.on_apply(p, kv.applied(p)[seen[static_cast<std::size_t>(p)]]);
        ++seen[static_cast<std::size_t>(p)];
      }
  }
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  EXPECT_EQ(checker.common_order().size(), 20u) << "all writes ordered";
}

TEST_P(ReplicatedKVTest, PartitionMinorityReadsAreStaleButConsistent) {
  World world(cfg_for(GetParam(), 5, 7));
  app::ReplicatedKV kv(world.stack());
  world.partition_at(sim::msec(100), {{0, 1, 2}, {3, 4}});
  world.simulator().at(sim::sec(2), [&] { kv.write(0, "x", "maj"); });
  world.run_until(sim::sec(5));
  EXPECT_EQ(kv.read(0, "x"), std::optional<std::string>("maj"));
  EXPECT_FALSE(kv.read(3, "x").has_value()) << "minority never applied it";
  world.heal_at(sim::sec(5));
  world.run_until(sim::sec(12));
  EXPECT_EQ(kv.read(3, "x"), std::optional<std::string>("maj")) << "catches up after heal";
}

INSTANTIATE_TEST_SUITE_P(BothBackends, ReplicatedKVTest,
                         ::testing::Values(Backend::kSpec, Backend::kTokenRing),
                         [](const auto& info) {
                           return info.param == Backend::kSpec ? "SpecVS" : "TokenRing";
                         });

TEST_P(ReplicatedKVTest, AtomicReadSeesAllPriorWrites) {
  World world(cfg_for(GetParam(), 3, 8));
  app::ReplicatedKV kv(world.stack());
  std::optional<std::string> got;
  std::size_t got_applied = 0;
  world.simulator().at(sim::msec(10), [&] { kv.write(1, "x", "first"); });
  world.simulator().at(sim::msec(11), [&] { kv.write(1, "x", "second"); });
  // Atomic read issued immediately after the writes, from a different
  // processor: because it is ordered through TO *after* both writes (they
  // were submitted earlier by FIFO per sender and the read marker follows),
  // it must not return a stale value once it completes.
  world.simulator().at(sim::msec(500), [&] {
    kv.atomic_read(0, "x", [&](const std::optional<std::string>& v, std::size_t applied) {
      got = v;
      got_applied = applied;
    });
    EXPECT_EQ(kv.atomic_reads_in_flight(0), 1u);
  });
  world.run_until(sim::sec(3));
  EXPECT_EQ(kv.atomic_reads_in_flight(0), 0u);
  EXPECT_EQ(got, std::optional<std::string>("second"));
  EXPECT_EQ(got_applied, 2u);
}

TEST_P(ReplicatedKVTest, AtomicReadOnMissingKey) {
  World world(cfg_for(GetParam(), 2, 9));
  app::ReplicatedKV kv(world.stack());
  bool fired = false;
  world.simulator().at(sim::msec(10), [&] {
    kv.atomic_read(0, "nothing", [&](const std::optional<std::string>& v, std::size_t) {
      fired = true;
      EXPECT_FALSE(v.has_value());
    });
  });
  world.run_until(sim::sec(2));
  EXPECT_TRUE(fired);
}

TEST_P(ReplicatedKVTest, AtomicReadBlocksWithoutQuorum) {
  World world(cfg_for(GetParam(), 5, 10));
  app::ReplicatedKV kv(world.stack());
  world.partition_at(sim::msec(100), {{0, 1, 2}, {3, 4}});
  bool fired = false;
  world.simulator().at(sim::sec(1), [&] {
    kv.atomic_read(3, "x", [&](const std::optional<std::string>&, std::size_t) {
      fired = true;
    });
  });
  world.run_until(sim::sec(4));
  EXPECT_FALSE(fired) << "minority cannot complete an atomic read";
  EXPECT_EQ(kv.atomic_reads_in_flight(3), 1u);
  // After the heal it completes.
  world.heal_at(sim::sec(4));
  world.run_until(sim::sec(12));
  EXPECT_TRUE(fired);
  EXPECT_EQ(kv.atomic_reads_in_flight(3), 0u);
}

TEST_P(ReplicatedKVTest, CasContentionHasExactlyOneWinner) {
  // The mutual-exclusion classic: three processors race to claim a lock
  // with CAS(absent -> mine). Totally ordered broadcast makes exactly one
  // win, deterministically, at every replica.
  World world(cfg_for(GetParam(), 3, 14));
  app::ReplicatedKV kv(world.stack());
  int winners = 0, losers = 0;
  for (ProcId p = 0; p < 3; ++p)
    world.simulator().at(sim::msec(10), [&kv, &winners, &losers, p] {
      kv.cas(p, "lock", std::nullopt, "owner-" + std::to_string(p),
             [&winners, &losers](bool ok) { ok ? ++winners : ++losers; });
    });
  world.run_until(sim::sec(3));
  EXPECT_EQ(winners, 1);
  EXPECT_EQ(losers, 2);
  // All replicas agree on who won.
  const auto owner = kv.read(0, "lock");
  ASSERT_TRUE(owner.has_value());
  for (ProcId p = 1; p < 3; ++p) EXPECT_EQ(kv.read(p, "lock"), owner);
}

TEST_P(ReplicatedKVTest, CasObservesWritesOrderedBeforeIt) {
  World world(cfg_for(GetParam(), 2, 15));
  app::ReplicatedKV kv(world.stack());
  bool first_result = false, second_result = true;
  world.simulator().at(sim::msec(10), [&] {
    kv.write(0, "x", "1");
    // Same sender, FIFO: the CAS is ordered after the write and sees "1".
    kv.cas(0, "x", std::optional<std::string>("1"), "2",
           [&](bool ok) { first_result = ok; });
    // This one expects the pre-write value and must fail.
    kv.cas(0, "x", std::optional<std::string>("1"), "3",
           [&](bool ok) { second_result = ok; });
  });
  world.run_until(sim::sec(2));
  EXPECT_TRUE(first_result);
  EXPECT_FALSE(second_result) << "x is already 2 when the second CAS executes";
  EXPECT_EQ(kv.read(1, "x"), std::optional<std::string>("2"));
}

TEST(ReplicatedKV, ReadMarkerEncoding) {
  const auto enc = app::encode_read_marker("k");
  const auto dec = app::decode_read_marker(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, "k");
  EXPECT_FALSE(app::decode_read_marker(app::encode_write("k", "v")).has_value());
  EXPECT_FALSE(app::decode_write(app::encode_read_marker("k")).has_value());
}

TEST(SeqCstChecker, DetectsDivergentApplyOrders) {
  app::SeqCstChecker checker(2);
  checker.on_submit(0, "x", "1");
  checker.on_submit(1, "x", "2");
  checker.on_apply(0, {0, "x", "1"});
  checker.on_apply(0, {1, "x", "2"});
  checker.on_apply(1, {1, "x", "2"});  // replica 1 applies in the other order
  EXPECT_FALSE(checker.ok());
}

TEST(SeqCstChecker, DetectsPhantomWrites) {
  app::SeqCstChecker checker(2);
  checker.on_apply(0, {0, "x", "never-submitted"});
  EXPECT_FALSE(checker.ok());
}

TEST(SeqCstChecker, DetectsFifoViolations) {
  app::SeqCstChecker checker(2);
  checker.on_submit(0, "x", "first");
  checker.on_submit(0, "x", "second");
  checker.on_apply(1, {0, "x", "second"});
  EXPECT_FALSE(checker.ok());
}

TEST(SeqCstChecker, DetectsWrongReadValues) {
  app::SeqCstChecker checker(2);
  checker.on_submit(0, "x", "1");
  checker.on_apply(0, {0, "x", "1"});
  checker.on_read(0, "x", std::optional<std::string>("999"), 1);
  EXPECT_FALSE(checker.ok());
  app::SeqCstChecker good(2);
  good.on_submit(0, "x", "1");
  good.on_apply(0, {0, "x", "1"});
  good.on_read(0, "x", std::optional<std::string>("1"), 1);
  good.on_read(0, "x", std::nullopt, 0);  // before applying anything
  EXPECT_TRUE(good.ok());
}

}  // namespace
}  // namespace vsg
