// Simulator: clock advance, run_until semantics, event-count guard.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace vsg::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, StepAdvancesClockToEventTime) {
  Simulator s;
  bool ran = false;
  s.at(msec(5), [&] { ran = true; });
  EXPECT_TRUE(s.step());
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), msec(5));
  EXPECT_FALSE(s.step());
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator s;
  Time seen = -1;
  s.at(msec(10), [&] { s.after(msec(7), [&] { seen = s.now(); }); });
  s.run();
  EXPECT_EQ(seen, msec(17));
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  std::vector<Time> ran;
  s.at(msec(5), [&] { ran.push_back(s.now()); });
  s.at(msec(15), [&] { ran.push_back(s.now()); });
  s.run_until(msec(10));
  EXPECT_EQ(ran, (std::vector<Time>{msec(5)}));
  EXPECT_EQ(s.now(), msec(10));
  s.run_until(msec(20));
  EXPECT_EQ(ran.size(), 2u);
}

TEST(Simulator, RunUntilIncludesEventsAtBoundary) {
  Simulator s;
  bool ran = false;
  s.at(msec(10), [&] { ran = true; });
  s.run_until(msec(10));
  EXPECT_TRUE(ran);
}

TEST(Simulator, EventsAtSameTimeRunInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(msec(1), [&] { order.push_back(1); });
  s.at(msec(1), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, CancelWorksThroughSimulator) {
  Simulator s;
  bool ran = false;
  const EventId id = s.at(msec(1), [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunGuardStopsRunawayLoops) {
  Simulator s;
  // Self-perpetuating zero-delay event chain.
  std::function<void()> loop = [&] { s.after(0, loop); };
  s.after(0, loop);
  const std::size_t processed = s.run(1000);
  EXPECT_EQ(processed, 1000u);
  EXPECT_FALSE(s.idle());
}

TEST(Simulator, EventsProcessedCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 7u);
}

}  // namespace
}  // namespace vsg::sim
