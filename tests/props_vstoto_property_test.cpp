// VStoTO-property (Figure 11): the bridge property of Theorem 7.1's proof,
// on hand-built traces and composed with the real stack.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/world.hpp"
#include "props/vstoto_property.hpp"

namespace vsg::props {
namespace {

using trace::BcastEvent;
using trace::BrcvEvent;
using trace::NewViewEvent;
using trace::TimedEvent;

core::View qview(std::uint64_t epoch, std::set<ProcId> members) {
  return core::View{core::ViewId{epoch, *members.begin()}, std::move(members)};
}

TEST(VStoTOProperty, VacuousWithoutConvergedViews) {
  std::vector<TimedEvent> tr{
      {10, NewViewEvent{0, qview(1, {0, 1})}},
      // member 1 never hears of the view
  };
  const auto report = evaluate_vstoto_property(tr, {0, 1}, 2, 2, 1000);
  EXPECT_FALSE(report.premise_holds);
  EXPECT_FALSE(report.why_not.empty());
}

TEST(VStoTOProperty, TimelyDeliveryAfterViewStabilization) {
  const auto v = qview(1, {0, 1});
  std::vector<TimedEvent> tr{
      {100, NewViewEvent{0, v}},
      {200, NewViewEvent{1, v}},
      {1000, BcastEvent{0, "a"}},
      {1300, BrcvEvent{0, 0, "a"}},
      {1400, BrcvEvent{0, 1, "a"}},
  };
  const auto report = evaluate_vstoto_property(tr, {0, 1}, 2, 2, /*d=*/500);
  ASSERT_TRUE(report.premise_holds) << report.why_not;
  EXPECT_EQ(report.view_stab_time, 200);
  ASSERT_TRUE(report.required_l3.has_value());
  EXPECT_EQ(*report.required_l3, 0);
  EXPECT_TRUE(report.holds_with_d(500));
}

TEST(VStoTOProperty, RecoveryBacklogAbsorbedByL3) {
  // A value from before the view change is delivered late (during the
  // state exchange): the lateness counts against l''', not against d.
  const auto v = qview(1, {0, 1});
  std::vector<TimedEvent> tr{
      {0, BcastEvent{0, "old"}},
      {100, NewViewEvent{0, v}},
      {200, NewViewEvent{1, v}},
      {900, BrcvEvent{0, 0, "old"}},
      {1000, BrcvEvent{0, 1, "old"}},
  };
  // d = 300: delivery at 1000 needs view_stab(200) + l''' + 300 >= 1000,
  // so l''' = 500.
  const auto report = evaluate_vstoto_property(tr, {0, 1}, 2, 2, 300);
  ASSERT_TRUE(report.required_l3.has_value());
  EXPECT_EQ(*report.required_l3, 500);
  EXPECT_FALSE(report.holds_with_d(300)) << "500 > d";
  EXPECT_TRUE(report.holds_with_d(500));
}

TEST(VStoTOProperty, MissingDeliveryViolates) {
  const auto v = qview(1, {0, 1});
  std::vector<TimedEvent> tr{
      {100, NewViewEvent{0, v}},
      {100, NewViewEvent{1, v}},
      {500, BcastEvent{0, "lost"}},
      {600, BrcvEvent{0, 0, "lost"}},  // never at 1
  };
  const auto report = evaluate_vstoto_property(tr, {0, 1}, 2, 2, 1000);
  ASSERT_TRUE(report.premise_holds);
  EXPECT_FALSE(report.required_l3.has_value());
  EXPECT_FALSE(report.holds_with_d(1000000));
}

// The composition of the proof of Theorem 7.1, on a real execution:
// the VS level stabilizes (VS-property), the recovery interval is bounded
// (this property), and consequently TO-property holds with b + d.
TEST(VStoTOProperty, ComposesWithVSPropertyOnRealStack) {
  harness::WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = 404;
  harness::World world(cfg);
  const std::set<ProcId> q{0, 1, 2, 3};
  world.partition_at(sim::msec(100), {{0, 1, 2, 3}});
  harness::steady_traffic({0, 3}, 12, sim::sec(1), sim::msec(60)).apply(world);
  world.run_until(sim::sec(10));

  const sim::Time d = 3 * (cfg.ring.pi + 4 * cfg.ring.delta);
  const auto vstoto =
      evaluate_vstoto_property(world.recorder().events(), q, 4, 4, d, sim::sec(8));
  ASSERT_TRUE(vstoto.premise_holds) << vstoto.why_not;
  EXPECT_TRUE(vstoto.holds_with_d(d))
      << "l''' = " << (vstoto.required_l3 ? *vstoto.required_l3 : -1);

  // And the conclusion of the theorem, as in Section 7's unwinding.
  const sim::Time b =
      9 * cfg.ring.delta + std::max(cfg.ring.pi + 7 * cfg.ring.delta, cfg.ring.mu);
  const auto to = world.to_report(q, d, sim::sec(8));
  EXPECT_TRUE(to.holds_with(b + d));
}

}  // namespace
}  // namespace vsg::props
