// Configuration matrix: the canonical partition-heal-verify pipeline swept
// over (group size) x (back end) x (seed). Each instance runs traffic
// through a partition and a heal, then asserts full trace safety and
// eventual uniform delivery — broad, cheap coverage of size- and
// schedule-dependent corner cases.

#include <gtest/gtest.h>

#include <tuple>

#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

using MatrixParam = std::tuple<int, Backend, std::uint64_t>;

class StackMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(StackMatrix, PartitionHealPipeline) {
  const auto [n, backend, seed] = GetParam();
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = backend;
  cfg.seed = seed;
  World world(cfg);

  // Majority/minority split (majority keeps a quorum for n >= 3).
  std::set<ProcId> maj, min;
  for (ProcId p = 0; p < n; ++p) (2 * (p + 1) <= n ? min : maj).insert(p);
  world.partition_at(sim::msec(200), {maj, min});

  // Traffic from one member of each side, before and during the partition.
  const ProcId maj_sender = *maj.begin();
  const ProcId min_sender = min.empty() ? maj_sender : *min.begin();
  world.bcast_at(sim::msec(50), maj_sender, "pre");
  world.bcast_at(sim::sec(1), maj_sender, "maj");
  if (!min.empty()) world.bcast_at(sim::sec(1), min_sender, "min");

  world.heal_at(sim::sec(3));
  world.run_until(sim::sec(12));

  const auto to_violations = world.check_to_safety();
  ASSERT_TRUE(to_violations.empty())
      << "n=" << n << " seed=" << seed << ": " << to_violations.front();
  const auto vs_violations = world.check_vs_safety();
  ASSERT_TRUE(vs_violations.empty())
      << "n=" << n << " seed=" << seed << ": " << vs_violations.front();

  const std::size_t expect = min.empty() ? 2u : 3u;
  const auto& reference = world.stack().process(0).delivered();
  EXPECT_EQ(reference.size(), expect) << "n=" << n << " seed=" << seed;
  for (ProcId p = 1; p < n; ++p)
    EXPECT_EQ(world.stack().process(p).delivered(), reference)
        << "n=" << n << " seed=" << seed << " at " << p;
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto [n, backend, seed] = info.param;
  return "n" + std::to_string(n) +
         (backend == Backend::kSpec ? "_spec_" : "_ring_") + "s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, StackMatrix,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(Backend::kSpec, Backend::kTokenRing),
                       ::testing::Values(1u, 2u, 3u)),
    matrix_name);

}  // namespace
}  // namespace vsg
