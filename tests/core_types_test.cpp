// ViewId / View: total order, initial view, serde round trips.

#include <gtest/gtest.h>

#include "core/types.hpp"

namespace vsg::core {
namespace {

TEST(ViewId, LexicographicOrder) {
  EXPECT_LT((ViewId{1, 0}), (ViewId{2, 0}));
  EXPECT_LT((ViewId{1, 2}), (ViewId{2, 0})) << "epoch dominates";
  EXPECT_LT((ViewId{1, 0}), (ViewId{1, 1})) << "origin breaks ties";
  EXPECT_EQ((ViewId{3, 2}), (ViewId{3, 2}));
}

TEST(ViewId, InitialIsMinimal) {
  const ViewId g0 = ViewId::initial();
  EXPECT_LE(g0, (ViewId{0, 0}));
  EXPECT_LT(g0, (ViewId{0, 1}));
  EXPECT_LT(g0, (ViewId{1, 0}));
}

TEST(View, ContainsChecksMembership) {
  View v{ViewId{1, 0}, {1, 3, 5}};
  EXPECT_TRUE(v.contains(3));
  EXPECT_FALSE(v.contains(2));
}

TEST(View, InitialViewHasFirstN0Processors) {
  const View v0 = initial_view(3);
  EXPECT_EQ(v0.id, ViewId::initial());
  EXPECT_EQ(v0.members, (std::set<ProcId>{0, 1, 2}));
}

TEST(View, EqualityIsStructural) {
  View a{ViewId{1, 0}, {0, 1}};
  View b{ViewId{1, 0}, {0, 1}};
  View c{ViewId{1, 0}, {0, 2}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ViewId, SerdeRoundTrip) {
  util::Encoder e;
  encode(e, ViewId{77, 5});
  const auto buf = e.take();
  util::Decoder d(buf);
  EXPECT_EQ(decode_viewid(d), (ViewId{77, 5}));
  EXPECT_TRUE(d.complete());
}

TEST(View, SerdeRoundTrip) {
  View v{ViewId{9, 1}, {0, 2, 4}};
  util::Encoder e;
  encode(e, v);
  const auto buf = e.take();
  util::Decoder d(buf);
  EXPECT_EQ(decode_view(d), v);
  EXPECT_TRUE(d.complete());
}

TEST(ToString, HumanReadableForms) {
  EXPECT_EQ(to_string(ViewId{2, 1}), "g(2.1)");
  EXPECT_EQ(to_string(std::set<ProcId>{0, 2}), "{0,2}");
  EXPECT_EQ(to_string(View{ViewId{2, 1}, {0, 2}}), "g(2.1){0,2}");
}

}  // namespace
}  // namespace vsg::core
