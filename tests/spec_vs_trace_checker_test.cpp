// VSTraceChecker: accepts VS-machine behaviours and flags each safety
// violation class — self-inclusion, monotonicity, id uniqueness, the
// initial-view rule, sending-view delivery, per-view total order, and safe
// soundness.

#include <gtest/gtest.h>

#include "spec/vs_trace_checker.hpp"

namespace vsg::spec {
namespace {

using trace::GprcvEvent;
using trace::GpsndEvent;
using trace::NewViewEvent;
using trace::SafeEvent;
using trace::TimedEvent;

std::vector<TimedEvent> t(std::initializer_list<trace::Event> events) {
  std::vector<TimedEvent> out;
  sim::Time at = 0;
  for (auto& e : events) out.push_back({at++, e});
  return out;
}

util::Bytes b(std::uint8_t x) { return util::Bytes{x}; }

core::View view(std::uint64_t epoch, ProcId origin, std::set<ProcId> members) {
  return core::View{core::ViewId{epoch, origin}, std::move(members)};
}

TEST(VSTraceChecker, HappyPathWithSafe) {
  VSTraceChecker c(2, 2);
  c.check_all(t({
      GpsndEvent{0, b(1)},
      GprcvEvent{0, 0, b(1)},
      GprcvEvent{0, 1, b(1)},
      SafeEvent{0, 0, b(1)},
      SafeEvent{0, 1, b(1)},
  }));
  EXPECT_TRUE(c.ok()) << c.violations().front();
  EXPECT_EQ(c.view_order(core::ViewId::initial()).size(), 1u);
}

TEST(VSTraceChecker, SelfInclusionViolation) {
  VSTraceChecker c(3, 3);
  c.check_all(t({NewViewEvent{2, view(1, 0, {0, 1})}}));
  EXPECT_FALSE(c.ok());
}

TEST(VSTraceChecker, LocalMonotonicityViolation) {
  VSTraceChecker c(2, 2);
  c.check_all(t({
      NewViewEvent{0, view(5, 0, {0, 1})},
      NewViewEvent{0, view(3, 0, {0})},  // id goes backwards at 0
  }));
  EXPECT_FALSE(c.ok());
}

TEST(VSTraceChecker, DuplicateViewIdDifferentMembership) {
  VSTraceChecker c(3, 3);
  c.check_all(t({
      NewViewEvent{0, view(1, 0, {0, 1})},
      NewViewEvent{2, view(1, 0, {0, 2})},  // same id, different set
  }));
  EXPECT_FALSE(c.ok());
}

TEST(VSTraceChecker, InitialViewRule) {
  // Processor 2 starts outside P0 (n0 = 2) and must not receive anything
  // before its first newview.
  VSTraceChecker c(3, 2);
  c.check_all(t({GpsndEvent{0, b(1)}, GprcvEvent{0, 2, b(1)}}));
  EXPECT_FALSE(c.ok());
}

TEST(VSTraceChecker, SendIntoBottomViewNeverDelivered) {
  VSTraceChecker c(3, 2);
  c.check_all(t({GpsndEvent{2, b(1)}, GprcvEvent{2, 0, b(1)}}));
  EXPECT_FALSE(c.ok()) << "message sent before any view must be lost";
}

TEST(VSTraceChecker, SendingViewDeliveryViolation) {
  VSTraceChecker c(2, 2);
  c.check_all(t({
      GpsndEvent{0, b(1)},                  // sent in g0
      NewViewEvent{0, view(1, 0, {0, 1})},
      NewViewEvent{1, view(1, 0, {0, 1})},
      GprcvEvent{0, 1, b(1)},               // delivered in the new view
  }));
  EXPECT_FALSE(c.ok());
}

TEST(VSTraceChecker, PerViewTotalOrderViolation) {
  VSTraceChecker c(3, 3);
  c.check_all(t({
      GpsndEvent{0, b(1)},
      GpsndEvent{1, b(2)},
      GprcvEvent{0, 2, b(1)},  // 2 fixes order: msg(0) first
      GprcvEvent{1, 0, b(2)},  // 0 delivers msg(1) first -> divergent order
  }));
  EXPECT_FALSE(c.ok());
}

TEST(VSTraceChecker, SafeBeforeAllMembersDeliveredFlagged) {
  VSTraceChecker c(2, 2);
  c.check_all(t({
      GpsndEvent{0, b(1)},
      GprcvEvent{0, 0, b(1)},
      SafeEvent{0, 0, b(1)},  // member 1 has not delivered yet
  }));
  EXPECT_FALSE(c.ok());
}

TEST(VSTraceChecker, SafeRespectsQueueOrder) {
  VSTraceChecker c(2, 2);
  c.check_all(t({
      GpsndEvent{0, b(1)},
      GpsndEvent{0, b(2)},
      GprcvEvent{0, 0, b(1)},
      GprcvEvent{0, 0, b(2)},
      GprcvEvent{0, 1, b(1)},
      GprcvEvent{0, 1, b(2)},
      SafeEvent{0, 0, b(2)},  // skips the first message in safe order
  }));
  EXPECT_FALSE(c.ok());
}

TEST(VSTraceChecker, ViewChangeDropsUndeliveredMessagesLegally) {
  // 0 sends two; only the first is delivered before the view changes at
  // both members; the second is silently lost — legal (prefix delivery).
  const auto v1 = view(1, 0, {0, 1});
  VSTraceChecker c(2, 2);
  c.check_all(t({
      GpsndEvent{0, b(1)},
      GpsndEvent{0, b(2)},
      GprcvEvent{0, 0, b(1)},
      GprcvEvent{0, 1, b(1)},
      NewViewEvent{0, v1},
      NewViewEvent{1, v1},
      GpsndEvent{1, b(3)},
      GprcvEvent{1, 0, b(3)},
      GprcvEvent{1, 1, b(3)},
  }));
  EXPECT_TRUE(c.ok()) << c.violations().front();
}

TEST(VSTraceChecker, DisjointConcurrentViewsAreLegal) {
  // A partitioned run: {0,1} and {2} in different views concurrently.
  VSTraceChecker c(3, 3);
  const auto va = view(1, 0, {0, 1});
  const auto vb = view(2, 2, {2});
  c.check_all(t({
      NewViewEvent{0, va},
      NewViewEvent{1, va},
      NewViewEvent{2, vb},
      GpsndEvent{0, b(1)},
      GprcvEvent{0, 1, b(1)},
      GpsndEvent{2, b(9)},
      GprcvEvent{2, 2, b(9)},
      SafeEvent{2, 2, b(9)},  // singleton view: own delivery suffices
  }));
  EXPECT_TRUE(c.ok()) << c.violations().front();
}

TEST(VSTraceChecker, CauseMapsExposed) {
  VSTraceChecker c(2, 2);
  c.check_all(t({
      GpsndEvent{0, b(1)},
      GprcvEvent{0, 1, b(1)},
      SafeEvent{0, 1, b(1)},  // bad (0 hasn't delivered) but cause exists
  }));
  EXPECT_EQ(c.gprcv_cause().at(1), 0u);
  EXPECT_EQ(c.safe_cause().at(2), 0u);
}

}  // namespace
}  // namespace vsg::spec
