// obs::Health rule semantics over synthetic sample streams: each rule fires
// once per episode, re-arms on recovery, respects the liveness probe, and
// skips cleanly when a backend does not publish the counters it watches.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace vsg::obs {
namespace {

HealthConfig quiet_config() {
  HealthConfig cfg;
  cfg.token_stall = false;
  cfg.backlog_growth = false;
  cfg.view_convergence = false;
  return cfg;
}

MetricsSnapshot ring_snap(std::uint64_t rotations) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("ring.token_rotations", rotations);
  return snap;
}

MetricsSnapshot backlog_snap(std::int64_t depth) {
  MetricsSnapshot snap;
  snap.gauges.emplace_back("ring.backlog_depth", depth);
  return snap;
}

MetricsSnapshot view_snap(std::uint64_t rounds, std::uint64_t established) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("ring.formation_rounds", rounds);
  snap.counters.emplace_back("to.primary_established", established);
  return snap;
}

// --- token_stall -----------------------------------------------------------

TEST(TokenStall, FlatCounterFiresOncePerEpisodeAndRearmsOnProgress) {
  HealthConfig cfg = quiet_config();
  cfg.token_stall = true;
  cfg.stall_after = sim::msec(500);
  Health health(cfg);

  sim::Time t = 0;
  for (int i = 0; i < 12; ++i) health.observe("aggregate", t += sim::msec(100), ring_snap(5));
  ASSERT_EQ(health.events().size(), 1u) << "edge-triggered: one event per episode";
  EXPECT_EQ(health.events()[0].rule, "token_stall");
  EXPECT_EQ(health.events()[0].series, "aggregate");
  EXPECT_EQ(health.events()[0].at, sim::msec(600));

  // Progress re-arms; a second flat stretch is a new episode.
  health.observe("aggregate", t += sim::msec(100), ring_snap(6));
  for (int i = 0; i < 7; ++i) health.observe("aggregate", t += sim::msec(100), ring_snap(6));
  EXPECT_EQ(health.events().size(), 2u);
}

TEST(TokenStall, FlatAtZeroIsARingThatNeverLaunched) {
  HealthConfig cfg = quiet_config();
  cfg.token_stall = true;
  cfg.stall_after = sim::msec(500);
  Health health(cfg);
  sim::Time t = 0;
  for (int i = 0; i < 8; ++i) health.observe("aggregate", t += sim::msec(100), ring_snap(0));
  EXPECT_EQ(health.events().size(), 1u);
}

TEST(TokenStall, AbsentCounterMeansNoRingAndNoVerdict) {
  // Spec-backend Worlds publish no ring.* counters; the rule must not read
  // the absence as "flat at zero" and cry stall forever.
  HealthConfig cfg = quiet_config();
  cfg.token_stall = true;
  cfg.stall_after = sim::msec(200);
  Health health(cfg);
  sim::Time t = 0;
  for (int i = 0; i < 20; ++i)
    health.observe("aggregate", t += sim::msec(100), MetricsSnapshot{});
  EXPECT_TRUE(health.events().empty());
}

TEST(TokenStall, LivenessProbeGatesTheRule) {
  HealthConfig cfg = quiet_config();
  cfg.token_stall = true;
  cfg.stall_after = sim::msec(300);
  Health health(cfg);
  bool live = false;
  health.set_liveness([&live] { return live; });

  // All members down: a flat counter is expected, not a stall.
  sim::Time t = 0;
  for (int i = 0; i < 10; ++i) health.observe("aggregate", t += sim::msec(100), ring_snap(3));
  EXPECT_TRUE(health.events().empty());

  // Members come back; only now does flat time count.
  live = true;
  for (int i = 0; i < 4; ++i) health.observe("aggregate", t += sim::msec(100), ring_snap(3));
  EXPECT_EQ(health.events().size(), 1u);
}

// --- backlog_growth --------------------------------------------------------

TEST(BacklogGrowth, StrictGrowthStreakFiresPlateauDoesNot) {
  HealthConfig cfg = quiet_config();
  cfg.backlog_growth = true;
  cfg.growth_windows = 4;
  Health health(cfg);

  sim::Time t = 0;
  std::int64_t depth = 0;
  for (int i = 0; i < 4; ++i) health.observe("aggregate", t += sim::msec(100), backlog_snap(++depth));
  EXPECT_TRUE(health.events().empty()) << "streak of 3 increases after baseline";
  health.observe("aggregate", t += sim::msec(100), backlog_snap(++depth));
  ASSERT_EQ(health.events().size(), 1u);
  EXPECT_EQ(health.events()[0].rule, "backlog_growth");
  EXPECT_EQ(health.events()[0].series, "aggregate");

  // Further growth within the same episode stays a single event.
  health.observe("aggregate", t += sim::msec(100), backlog_snap(++depth));
  EXPECT_EQ(health.events().size(), 1u);
}

TEST(BacklogGrowth, PlateauNeitherExtendsNorResets) {
  HealthConfig cfg = quiet_config();
  cfg.backlog_growth = true;
  cfg.growth_windows = 3;
  Health health(cfg);

  sim::Time t = 0;
  health.observe("aggregate", t += sim::msec(100), backlog_snap(1));
  health.observe("aggregate", t += sim::msec(100), backlog_snap(2));
  health.observe("aggregate", t += sim::msec(100), backlog_snap(3));
  health.observe("aggregate", t += sim::msec(100), backlog_snap(3));  // plateau
  EXPECT_TRUE(health.events().empty());
  health.observe("aggregate", t += sim::msec(100), backlog_snap(4));  // streak hits 3
  EXPECT_EQ(health.events().size(), 1u);
}

TEST(BacklogGrowth, DrainRearmsTheEpisode) {
  HealthConfig cfg = quiet_config();
  cfg.backlog_growth = true;
  cfg.growth_windows = 2;
  Health health(cfg);

  sim::Time t = 0;
  for (std::int64_t d : {1, 2, 3}) health.observe("aggregate", t += sim::msec(100), backlog_snap(d));
  ASSERT_EQ(health.events().size(), 1u);
  health.observe("aggregate", t += sim::msec(100), backlog_snap(0));  // drain
  for (std::int64_t d : {1, 2, 3}) health.observe("aggregate", t += sim::msec(100), backlog_snap(d));
  EXPECT_EQ(health.events().size(), 2u) << "a fresh climb after a drain is a new episode";
}

TEST(BacklogGrowth, WatchesPendingLabelsIndependently) {
  HealthConfig cfg = quiet_config();
  cfg.backlog_growth = true;
  cfg.growth_windows = 2;
  Health health(cfg);

  sim::Time t = 0;
  for (std::int64_t d : {1, 2, 3, 4}) {
    MetricsSnapshot snap;
    snap.gauges.emplace_back("ring.backlog_depth", 0);  // flat, never fires
    snap.gauges.emplace_back("to.pending_labels", d);
    health.observe("aggregate", t += sim::msec(100), snap);
  }
  ASSERT_EQ(health.events().size(), 1u);
  EXPECT_NE(health.events()[0].detail.find("to.pending_labels"), std::string::npos);
}

// --- view_convergence ------------------------------------------------------

TEST(ViewConvergence, FormationWithoutPrimaryFiresAfterBound) {
  HealthConfig cfg = quiet_config();
  cfg.view_convergence = true;
  cfg.convergence_bound = sim::msec(400);
  Health health(cfg);

  sim::Time t = 0;
  health.observe("aggregate", t += sim::msec(100), view_snap(0, 1));
  health.observe("aggregate", t += sim::msec(100), view_snap(2, 1));  // formation starts
  health.observe("aggregate", t += sim::msec(100), view_snap(3, 1));
  health.observe("aggregate", t += sim::msec(100), view_snap(3, 1));
  EXPECT_TRUE(health.events().empty()) << "bound not yet elapsed";
  health.observe("aggregate", t += sim::msec(200), view_snap(3, 1));
  ASSERT_EQ(health.events().size(), 1u);
  EXPECT_EQ(health.events()[0].rule, "view_convergence");
}

TEST(ViewConvergence, PrimaryEstablishmentSettlesTheEpisode) {
  HealthConfig cfg = quiet_config();
  cfg.view_convergence = true;
  cfg.convergence_bound = sim::msec(400);
  Health health(cfg);

  sim::Time t = 0;
  health.observe("aggregate", t += sim::msec(100), view_snap(0, 0));
  health.observe("aggregate", t += sim::msec(100), view_snap(2, 0));  // formation starts
  health.observe("aggregate", t += sim::msec(100), view_snap(2, 1));  // primary lands in time
  for (int i = 0; i < 10; ++i)
    health.observe("aggregate", t += sim::msec(100), view_snap(2, 1));
  EXPECT_TRUE(health.events().empty());

  // A later formation burst that never converges is its own episode.
  health.observe("aggregate", t += sim::msec(100), view_snap(5, 1));
  health.observe("aggregate", t += sim::msec(500), view_snap(5, 1));
  EXPECT_EQ(health.events().size(), 1u);
}

// --- shared machinery ------------------------------------------------------

TEST(Health, SeriesAreTrackedIndependently) {
  HealthConfig cfg = quiet_config();
  cfg.token_stall = true;
  cfg.stall_after = sim::msec(300);
  Health health(cfg);

  sim::Time t = 0;
  for (int i = 0; i < 6; ++i) {
    t += sim::msec(100);
    health.observe("shard0", t, ring_snap(7));                               // stalled
    health.observe("shard1", t, ring_snap(static_cast<std::uint64_t>(i)));  // progressing
  }
  ASSERT_EQ(health.events().size(), 1u);
  EXPECT_EQ(health.events()[0].series, "shard0");
}

TEST(Health, BoundMetricsCountEventsPerRule) {
  HealthConfig cfg;  // all rules on
  cfg.stall_after = sim::msec(300);
  cfg.growth_windows = 2;
  Health health(cfg);
  MetricsRegistry reg;
  health.bind_metrics(reg);

  sim::Time t = 0;
  for (std::int64_t d : {1, 2, 3}) {
    MetricsSnapshot snap = backlog_snap(d);
    snap.counters.emplace_back("ring.token_rotations", 9);
    health.observe("aggregate", t += sim::msec(200), snap);
  }
  EXPECT_EQ(reg.counter("health.backlog_growth").value(), 1u);
  EXPECT_EQ(reg.counter("health.token_stall").value(), 1u);
  EXPECT_EQ(reg.counter("health.view_convergence").value(), 0u);
}

TEST(Health, VerdictFormatIsTheCampaignContract) {
  HealthConfig cfg = quiet_config();
  cfg.token_stall = true;
  cfg.stall_after = sim::msec(100);
  Health health(cfg);
  health.observe("shard2", sim::msec(100), ring_snap(4));
  health.observe("shard2", sim::msec(300), ring_snap(4));
  ASSERT_EQ(health.verdicts().size(), 1u);
  EXPECT_EQ(health.verdicts()[0], to_verdict(health.events()[0]));
  EXPECT_EQ(health.verdicts()[0].rfind("health: token_stall [shard2] at 300000us: ", 0), 0u)
      << health.verdicts()[0];
}

}  // namespace
}  // namespace vsg::obs
