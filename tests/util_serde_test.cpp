// Binary serialization: round trips, defensive decoding of truncated and
// garbage input, container helpers.

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/serde.hpp"

namespace vsg::util {
namespace {

TEST(Serde, ScalarRoundTrip) {
  Encoder e;
  e.u8(0xAB);
  e.u32(0xDEADBEEF);
  e.u64(0x0123456789ABCDEFULL);
  e.i64(-42);
  e.boolean(true);
  e.boolean(false);
  const Bytes buf = e.take();

  Decoder d(buf);
  EXPECT_EQ(d.u8(), 0xAB);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(d.i64(), -42);
  EXPECT_TRUE(d.boolean());
  EXPECT_FALSE(d.boolean());
  EXPECT_TRUE(d.complete());
}

TEST(Serde, StringRoundTrip) {
  Encoder e;
  e.str("");
  e.str("hello");
  e.str(std::string("emb\0edded", 9));
  const Bytes buf = e.take();

  Decoder d(buf);
  EXPECT_EQ(d.str(), "");
  EXPECT_EQ(d.str(), "hello");
  EXPECT_EQ(d.str(), std::string("emb\0edded", 9));
  EXPECT_TRUE(d.complete());
}

TEST(Serde, RawBlobRoundTrip) {
  Encoder e;
  e.raw(Bytes{1, 2, 3});
  e.raw(Bytes{});
  const Bytes buf = e.take();
  Decoder d(buf);
  EXPECT_EQ(d.raw(), (Bytes{1, 2, 3}));
  EXPECT_EQ(d.raw(), Bytes{});
  EXPECT_TRUE(d.complete());
}

TEST(Serde, TruncatedInputSetsNotOk) {
  Encoder e;
  e.u64(7);
  Bytes buf = e.take();
  buf.resize(4);  // cut the u64 in half
  Decoder d(buf);
  EXPECT_EQ(d.u64(), 0u);
  EXPECT_FALSE(d.ok());
  EXPECT_FALSE(d.complete());
}

TEST(Serde, OnceNotOkStaysNotOk) {
  const Bytes buf{1};
  Decoder d(buf);
  (void)d.u32();  // too short
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.u8(), 0);  // still not ok, returns zero
  EXPECT_FALSE(d.ok());
}

TEST(Serde, HostileLengthPrefixDoesNotCrash) {
  Encoder e;
  e.u32(0xFFFFFFFFu);  // claims a 4 GiB string follows
  const Bytes buf = e.take();
  Decoder d(buf);
  EXPECT_EQ(d.str(), "");
  EXPECT_FALSE(d.ok());
}

TEST(Serde, CompleteRequiresFullConsumption) {
  Encoder e;
  e.u32(1);
  e.u32(2);
  const Bytes buf = e.take();
  Decoder d(buf);
  (void)d.u32();
  EXPECT_TRUE(d.ok());
  EXPECT_FALSE(d.complete());  // one u32 left unread
}

TEST(Serde, VectorHelpersRoundTrip) {
  Encoder e;
  std::vector<std::string> in{"a", "bb", "ccc"};
  encode_vector(e, in, [](Encoder& enc, const std::string& s) { enc.str(s); });
  const Bytes buf = e.take();
  Decoder d(buf);
  const auto out = decode_vector<std::string>(d, [](Decoder& dec) { return dec.str(); });
  EXPECT_EQ(out, in);
  EXPECT_TRUE(d.complete());
}

TEST(Serde, VectorHelperStopsOnMalformedInput) {
  Encoder e;
  e.u32(1000);  // claims 1000 elements, provides none
  const Bytes buf = e.take();
  Decoder d(buf);
  const auto out = decode_vector<std::string>(d, [](Decoder& dec) { return dec.str(); });
  EXPECT_FALSE(d.ok());
  EXPECT_LE(out.size(), 1u);
}

// --- Zero-copy encoder/decoder surface ------------------------------------

TEST(Serde, MeasuredReserveCostsExactlyOneAllocation) {
  Encoder e;
  e.reserve(4 + 4 + (4 + 3));  // u32 + u32 + length-prefixed 3-byte blob
  e.u32(1);
  e.u32(2);
  e.raw(Bytes{7, 8, 9});
  EXPECT_EQ(e.allocs(), 1u);

  // An unreserved encode of the same content costs more.
  Encoder cold;
  cold.u32(1);
  cold.u32(2);
  cold.raw(Bytes{7, 8, 9});
  EXPECT_GE(cold.allocs(), 1u);
}

TEST(Serde, FinishHandsOffWithoutCopy) {
  Encoder e;
  e.reserve(8);
  e.u64(0x1122334455667788ull);
  const std::uint8_t* p = e.bytes().data();
  const Buffer b = e.finish();
  EXPECT_EQ(b.data(), p) << "finish() must move the backing store, not copy";
  EXPECT_EQ(b.size(), 8u);
}

TEST(Serde, PatchU32RewritesInPlace) {
  Encoder e;
  e.u32(0);  // placeholder
  e.u32(42);
  e.patch_u32(0, 0xDEADBEEF);
  Decoder d(e.bytes());
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u32(), 42u);
}

TEST(Serde, RawBufferSlicesWhenDecodingFromBuffer) {
  Encoder e;
  e.raw(Bytes{1, 2, 3, 4});
  const Buffer packet = e.finish();
  Decoder d(packet);
  const Buffer blob = d.raw_buffer();
  EXPECT_EQ(blob, Bytes({1, 2, 3, 4}));
  EXPECT_EQ(blob.id(), packet.id()) << "must be a slice of the input storage";
  EXPECT_EQ(blob.data(), packet.data() + 4);
}

TEST(Serde, RawBufferCopiesWhenDecodingBorrowedBytes) {
  Encoder e;
  e.raw(Bytes{9, 9});
  const Bytes wire = e.take();
  Decoder d(wire);
  const Buffer blob = d.raw_buffer();
  EXPECT_EQ(blob, Bytes({9, 9}));
  EXPECT_NE(static_cast<const void*>(blob.data()), static_cast<const void*>(wire.data() + 4));
}

TEST(Serde, DecoderFromTemporaryBufferKeepsStorageAlive) {
  // The decoder refcounts its origin, so decoding a temporary is safe and
  // raw_buffer slices outlive the expression (ASan guards this).
  Encoder e;
  e.raw(Bytes{5, 6, 7});
  Buffer blob;
  {
    Decoder d{[&] {
      return e.finish();
    }()};
    blob = d.raw_buffer();
  }
  EXPECT_EQ(blob, Bytes({5, 6, 7}));
}

TEST(Serde, InputSliceReturnsWindowedBuffer) {
  Encoder e;
  e.u32(0xAABBCCDD);
  e.u32(0x11223344);
  const Buffer packet = e.finish();
  Decoder d(packet);
  (void)d.u32();
  const std::size_t from = d.pos();
  (void)d.u32();
  const Buffer section = d.input_slice(from, d.pos());
  EXPECT_EQ(section.size(), 4u);
  EXPECT_EQ(section.id(), packet.id());
  EXPECT_EQ(section.storage_offset(), 4u);
}

class SerdeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerdeFuzz, RandomGarbageNeverCrashesDecoder) {
  Rng rng(GetParam());
  Bytes buf;
  const auto len = rng.below(64);
  for (std::uint64_t i = 0; i < len; ++i) buf.push_back(static_cast<std::uint8_t>(rng.next()));
  Decoder d(buf);
  // Interleave reads of every kind; must never crash or loop.
  (void)d.u8();
  (void)d.str();
  (void)d.u64();
  (void)d.raw();
  (void)d.boolean();
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace vsg::util
