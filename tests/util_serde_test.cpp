// Binary serialization: round trips, defensive decoding of truncated and
// garbage input, container helpers.

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/serde.hpp"

namespace vsg::util {
namespace {

TEST(Serde, ScalarRoundTrip) {
  Encoder e;
  e.u8(0xAB);
  e.u32(0xDEADBEEF);
  e.u64(0x0123456789ABCDEFULL);
  e.i64(-42);
  e.boolean(true);
  e.boolean(false);
  const Bytes buf = e.take();

  Decoder d(buf);
  EXPECT_EQ(d.u8(), 0xAB);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(d.i64(), -42);
  EXPECT_TRUE(d.boolean());
  EXPECT_FALSE(d.boolean());
  EXPECT_TRUE(d.complete());
}

TEST(Serde, StringRoundTrip) {
  Encoder e;
  e.str("");
  e.str("hello");
  e.str(std::string("emb\0edded", 9));
  const Bytes buf = e.take();

  Decoder d(buf);
  EXPECT_EQ(d.str(), "");
  EXPECT_EQ(d.str(), "hello");
  EXPECT_EQ(d.str(), std::string("emb\0edded", 9));
  EXPECT_TRUE(d.complete());
}

TEST(Serde, RawBlobRoundTrip) {
  Encoder e;
  e.raw(Bytes{1, 2, 3});
  e.raw(Bytes{});
  const Bytes buf = e.take();
  Decoder d(buf);
  EXPECT_EQ(d.raw(), (Bytes{1, 2, 3}));
  EXPECT_EQ(d.raw(), Bytes{});
  EXPECT_TRUE(d.complete());
}

TEST(Serde, TruncatedInputSetsNotOk) {
  Encoder e;
  e.u64(7);
  Bytes buf = e.take();
  buf.resize(4);  // cut the u64 in half
  Decoder d(buf);
  EXPECT_EQ(d.u64(), 0u);
  EXPECT_FALSE(d.ok());
  EXPECT_FALSE(d.complete());
}

TEST(Serde, OnceNotOkStaysNotOk) {
  const Bytes buf{1};
  Decoder d(buf);
  (void)d.u32();  // too short
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.u8(), 0);  // still not ok, returns zero
  EXPECT_FALSE(d.ok());
}

TEST(Serde, HostileLengthPrefixDoesNotCrash) {
  Encoder e;
  e.u32(0xFFFFFFFFu);  // claims a 4 GiB string follows
  const Bytes buf = e.take();
  Decoder d(buf);
  EXPECT_EQ(d.str(), "");
  EXPECT_FALSE(d.ok());
}

TEST(Serde, CompleteRequiresFullConsumption) {
  Encoder e;
  e.u32(1);
  e.u32(2);
  const Bytes buf = e.take();
  Decoder d(buf);
  (void)d.u32();
  EXPECT_TRUE(d.ok());
  EXPECT_FALSE(d.complete());  // one u32 left unread
}

TEST(Serde, VectorHelpersRoundTrip) {
  Encoder e;
  std::vector<std::string> in{"a", "bb", "ccc"};
  encode_vector(e, in, [](Encoder& enc, const std::string& s) { enc.str(s); });
  const Bytes buf = e.take();
  Decoder d(buf);
  const auto out = decode_vector<std::string>(d, [](Decoder& dec) { return dec.str(); });
  EXPECT_EQ(out, in);
  EXPECT_TRUE(d.complete());
}

TEST(Serde, VectorHelperStopsOnMalformedInput) {
  Encoder e;
  e.u32(1000);  // claims 1000 elements, provides none
  const Bytes buf = e.take();
  Decoder d(buf);
  const auto out = decode_vector<std::string>(d, [](Decoder& dec) { return dec.str(); });
  EXPECT_FALSE(d.ok());
  EXPECT_LE(out.size(), 1u);
}

class SerdeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerdeFuzz, RandomGarbageNeverCrashesDecoder) {
  Rng rng(GetParam());
  Bytes buf;
  const auto len = rng.below(64);
  for (std::uint64_t i = 0; i < len; ++i) buf.push_back(static_cast<std::uint8_t>(rng.next()));
  Decoder d(buf);
  // Interleave reads of every kind; must never crash or loop.
  (void)d.u8();
  (void)d.str();
  (void)d.u64();
  (void)d.raw();
  (void)d.boolean();
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace vsg::util
