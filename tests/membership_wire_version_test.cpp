// Frame versioning (docs/WIRE.md): v1 frames decode bit-identically under
// the v2-capable decoder, unknown version bytes are rejected with a clear
// error — even under the chaos unchecked-decode injection — and
// encoded_packet_size stays exact for both versions.

#include <gtest/gtest.h>

#include "membership/messages.hpp"
#include "util/hash.hpp"
#include "util/serde.hpp"

namespace vsg::membership {
namespace {

Token sample_token() {
  Token t;
  t.gid = core::ViewId{6, 1};
  t.lap = 11;
  t.base = 3;
  t.entries = {{0, util::Bytes{1, 2, 3}},
               {0, util::Bytes{4}},
               {2, util::Bytes{}},
               {1, util::Bytes{5, 6}}};
  t.delivered = {{0, 5}, {1, 4}, {2, 6}};
  return t;
}

std::vector<Packet> sample_packets() {
  return {
      Packet{Call{core::ViewId{7, 2}}},
      Packet{CallReply{core::ViewId{9, 0}}},
      Packet{ViewAnnounce{core::View{core::ViewId{3, 1}, {0, 1, 3}}}},
      Packet{sample_token()},
      Packet{Probe{core::ViewId{4, 3}}},
      Packet{Probe{std::nullopt}},
  };
}

bool packets_equal(const Packet& a, const Packet& b) {
  if (a.index() != b.index()) return false;
  if (const auto* ta = std::get_if<Token>(&a)) {
    const auto& tb = std::get<Token>(b);
    return ta->gid == tb.gid && ta->lap == tb.lap && ta->base == tb.base &&
           ta->entries == tb.entries && ta->delivered == tb.delivered;
  }
  if (const auto* ca = std::get_if<Call>(&a)) return ca->gid == std::get<Call>(b).gid;
  if (const auto* ra = std::get_if<CallReply>(&a)) return ra->gid == std::get<CallReply>(b).gid;
  if (const auto* va = std::get_if<ViewAnnounce>(&a))
    return va->view == std::get<ViewAnnounce>(b).view;
  return std::get<Probe>(a).gid == std::get<Probe>(b).gid;
}

TEST(WireVersion, V1FramesDecodeIdenticallyUnderTheV2CapableDecoder) {
  // The decoder has no version switch to flip: the same decode_packet_ex
  // that speaks v2 must reproduce every v1 packet exactly.
  for (const auto& pkt : sample_packets()) {
    const auto v1 = encode_packet(pkt, WireFormat::kV1);
    ASSERT_EQ(v1.view()[0], 1u);
    const auto back = decode_packet_ex(v1);
    ASSERT_TRUE(back.ok()) << back.error;
    EXPECT_TRUE(packets_equal(pkt, *back.packet)) << "tag index " << pkt.index();
  }
}

TEST(WireVersion, V1AndV2AgreeOnDecodedContent) {
  const Packet pkt{sample_token()};
  const auto v1 = decode_packet_ex(encode_packet(pkt, WireFormat::kV1));
  const auto v2 = decode_packet_ex(encode_packet(pkt, WireFormat::kV2));
  ASSERT_TRUE(v1.ok()) << v1.error;
  ASSERT_TRUE(v2.ok()) << v2.error;
  EXPECT_TRUE(packets_equal(*v1.packet, *v2.packet));
}

TEST(WireVersion, MeasuredSizeIsExactForEveryVersion) {
  for (const WireFormat w : {WireFormat::kV1, WireFormat::kV2, WireFormat::kV3})
    for (const auto& pkt : sample_packets())
      EXPECT_EQ(encode_packet(pkt, w).size(), encoded_packet_size(pkt, w))
          << to_string(w) << " tag index " << pkt.index();
}

TEST(WireVersion, V2BatchesSameSourceRunsIntoOneSegmentHeader) {
  // v1 spends 8 header bytes per entry (src + len); v2 spends 8 per
  // same-source run plus 4 per entry (len). A run of k entries saves
  // 4k - 8 bytes, so batching wins for any run longer than two.
  Token t;
  t.gid = core::ViewId{1, 0};
  t.entries = {{0, util::Bytes{1}}, {0, util::Bytes{2}}, {0, util::Bytes{3}}};
  const std::size_t v1 = encoded_packet_size(Packet{t}, WireFormat::kV1);
  const std::size_t v2 = encoded_packet_size(Packet{t}, WireFormat::kV2);
  EXPECT_EQ(v1 - v2, 4 * 3 - 8);
}

TEST(WireVersion, V3FramesRoundTripForEveryPacketKind) {
  for (const auto& pkt : sample_packets()) {
    const auto v3 = encode_packet(pkt, WireFormat::kV3);
    ASSERT_EQ(v3.view()[0], 3u);
    const auto back = decode_packet_ex(v3);
    ASSERT_TRUE(back.ok()) << back.error;
    EXPECT_TRUE(packets_equal(pkt, *back.packet)) << "tag index " << pkt.index();
  }
}

TEST(WireVersion, V3TokenFramesAreSmallerThanV2) {
  // Varint scalars, delta-coded viewids and uvarint segment headers all
  // shrink; the riding payload bytes themselves are incompressible.
  const Packet pkt{sample_token()};
  EXPECT_LT(encoded_packet_size(pkt, WireFormat::kV3),
            encoded_packet_size(pkt, WireFormat::kV2));
}

TEST(WireVersion, WarmSegmentCacheIsNotSplicedAcrossVersions) {
  // Per-segment caches hold bytes in one version's layout; re-encoding the
  // same token under another version must rebuild, not splice stale bytes.
  Token t = sample_token();
  Packet warm{t};
  (void)encode_packet(warm, WireFormat::kV2);  // warms the copy's caches
  Token warmed = std::get<Token>(warm);
  ASSERT_EQ(warmed.segs_version, 2u);

  const auto v3_from_warm = encode_packet(Packet{warmed}, WireFormat::kV3);
  Token cold = sample_token();
  const auto v3_cold = encode_packet(Packet{cold}, WireFormat::kV3);
  EXPECT_EQ(v3_from_warm, v3_cold);
  const auto back = decode_packet_ex(v3_from_warm);
  ASSERT_TRUE(back.ok()) << back.error;
  EXPECT_TRUE(packets_equal(Packet{sample_token()}, *back.packet));

  // Re-encoding under the warm version splices (byte-identical output).
  const auto v2_again = encode_packet(Packet{warmed}, WireFormat::kV2);
  Token cold2 = sample_token();
  EXPECT_EQ(v2_again, encode_packet(Packet{cold2}, WireFormat::kV2));
}

TEST(WireVersion, UnknownVersionByteRejectedWithClearError) {
  auto bytes = encode_packet(Packet{Probe{std::nullopt}}).to_bytes();
  bytes[0] = 4;  // one past the newest known version
  const auto out = decode_packet_ex(util::Buffer{bytes});
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.error.find("unknown wire version 4"), std::string::npos) << out.error;
  EXPECT_NE(out.error.find("docs/WIRE.md"), std::string::npos) << out.error;
}

TEST(WireVersion, UnknownVersionRejectedEvenWithUncheckedDecodeInjected) {
  // The chaos injection disables checksums and truncation checks — but the
  // version byte guards *which layout the bytes are read under*, so it must
  // stay load-bearing even in unchecked mode (never UB, never a
  // misinterpreted packet).
  auto bytes = encode_packet(Packet{sample_token()}, WireFormat::kV2).to_bytes();
  bytes[0] = 0x7F;
  const util::UncheckedDecodeGuard unchecked;
  const auto out = decode_packet_ex(util::Buffer{bytes});
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.error.find("unknown wire version"), std::string::npos) << out.error;
}

TEST(WireVersion, VersionByteFlipBetweenKnownVersionsFailsTheChecksum) {
  // The checksum chains over the version byte, so rewriting v2 -> v1 cannot
  // reinterpret a v2 body under the v1 layout.
  auto bytes = encode_packet(Packet{sample_token()}, WireFormat::kV2).to_bytes();
  bytes[0] = 1;
  const auto out = decode_packet_ex(util::Buffer{bytes});
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.error.find("checksum"), std::string::npos) << out.error;
}

TEST(WireVersion, EmptyPacketNamesItself) {
  const auto out = decode_packet_ex(util::Buffer{});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, "empty packet");
}

TEST(WireVersion, MalformedV2SegmentsAreNamed) {
  // Forge a v2 token whose entries section claims one entry but carries a
  // zero-count segment: the decoder must call out the entries section, not
  // crash or accept garbage.
  Token t;
  t.gid = core::ViewId{1, 0};
  t.entries = {{0, util::Bytes{9}}};
  auto bytes = encode_packet(Packet{t}, WireFormat::kV2).to_bytes();
  // Layout: frame(9) tag(1) viewid(12) lap(4) base(4) total(4) src(4) count(4)...
  const std::size_t count_off = 9 + 1 + 12 + 4 + 4 + 4 + 4;
  ASSERT_LT(count_off + 4, bytes.size());
  bytes[count_off] = 0;  // count LE: 1 -> 0
  // Re-seal the frame (checksum = fnv1a chained over version byte + body)
  // so only the semantic error remains.
  const std::uint32_t checksum = static_cast<std::uint32_t>(util::fnv1a(
      util::BufferView(bytes.data() + 9, bytes.size() - 9),
      util::fnv1a(util::BufferView(bytes.data(), 1))));
  for (int i = 0; i < 4; ++i)
    bytes[1 + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(checksum >> (8 * i));
  const auto out = decode_packet_ex(util::Buffer{bytes});
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.error.find("v2 token entries"), std::string::npos) << out.error;
}

}  // namespace
}  // namespace vsg::membership
