// Exhaustive small-scope verification of the COMPLETE VStoTO-system:
// the VStoTO processes composed with VS-machine, explored over every
// schedule of a tiny universe (bounded views, bounded client inputs,
// bounded depth), with the full Lemma 6.x invariant suite and the
// well-definedness of the simulation relation f checked in every reachable
// state, and the TO trace checker run on every path's external trace.
//
// This is the closest executable analogue of the paper's inductive proofs:
// within the scope, *no* interleaving violates any invariant.

#include <gtest/gtest.h>

#include <functional>

#include "sim/simulator.hpp"
#include "spec/to_trace_checker.hpp"
#include "spec/vs_machine.hpp"
#include "to/stack.hpp"
#include "trace/recorder.hpp"
#include "verify/forward_simulation.hpp"
#include "verify/invariants.hpp"
#include "vstoto/process.hpp"

namespace vsg {
namespace {

// VS service that routes gpsnd straight into a VS-machine; the explorer
// drives all other machine transitions by hand.
class MachineVS final : public vs::Service {
 public:
  MachineVS(int n, int n0) : machine(n, n0), clients(static_cast<std::size_t>(n)) {}
  int size() const override { return machine.size(); }
  void attach(ProcId p, vs::Client& c) override {
    clients[static_cast<std::size_t>(p)] = &c;
  }
  void gpsnd(ProcId p, vs::Payload m) override {
    recorder->record(trace::GpsndEvent{p, m});
    machine.gpsnd(p, std::move(m));
  }

  spec::VSMachine machine;
  std::vector<vs::Client*> clients;
  trace::Recorder* recorder = nullptr;
};

struct Explorer {
  int n;
  int depth_limit;
  std::vector<core::View> candidate_views;
  int max_bcasts;

  sim::Simulator sim;
  trace::Recorder recorder{sim};
  MachineVS service;
  std::unique_ptr<to::Stack> stack;
  verify::GlobalState gs;

  std::size_t states = 0;
  int bcasts_used = 0;

  Explorer(int n_, int n0, int depth, std::vector<core::View> views, int bcasts)
      : n(n_),
        depth_limit(depth),
        candidate_views(std::move(views)),
        max_bcasts(bcasts),
        service(n_, n0) {
    service.recorder = &recorder;
    quorums_keepalive = core::majorities(n_);
    stack = std::make_unique<to::Stack>(service, recorder, quorums_keepalive, n0);
    gs.machine = &service.machine;
    gs.quorums = quorums_keepalive.get();
    for (ProcId p = 0; p < n_; ++p) gs.procs.push_back(&stack->process(p));
  }

  std::shared_ptr<const core::QuorumSystem> quorums_keepalive;

  struct Snapshot {
    spec::VSMachine machine;
    std::vector<vstoto::Process::Checkpoint> procs;
    std::vector<trace::TimedEvent> trace;
    int bcasts;
  };

  Snapshot take() {
    Snapshot s{service.machine, {}, recorder.events(), bcasts_used};
    for (ProcId p = 0; p < n; ++p) s.procs.push_back(stack->process(p).checkpoint());
    return s;
  }

  void put(const Snapshot& s) {
    service.machine = s.machine;
    for (ProcId p = 0; p < n; ++p)
      stack->process(p).restore(s.procs[static_cast<std::size_t>(p)]);
    // The recorder has no truncate API; rebuild by clearing and replaying.
    recorder.clear();
    for (const auto& te : s.trace) recorder.record(te.event);
    bcasts_used = s.bcasts;
  }

  void check_state() {
    ++states;
    const auto bad = verify::check_all_invariants(gs);
    ASSERT_TRUE(bad.empty()) << bad.front();
    std::vector<std::string> fbad;
    const auto image = verify::compute_f(gs, &fbad);
    ASSERT_TRUE(image.has_value()) << (fbad.empty() ? "f undefined" : fbad.front());
    spec::TOTraceChecker to_checker(n);
    to_checker.check_all(recorder.events());
    ASSERT_TRUE(to_checker.ok()) << to_checker.violations().front();
  }

  // Enumerate and recurse over every enabled transition.
  void dfs(int depth) {
    if (depth >= depth_limit || ::testing::Test::HasFatalFailure()) return;
    const Snapshot here = take();

    auto branch = [&](const std::function<void()>& apply) {
      apply();
      check_state();
      if (!::testing::Test::HasFatalFailure()) dfs(depth + 1);
      put(here);
    };

    // Client inputs.
    if (bcasts_used < max_bcasts) {
      for (ProcId p = 0; p < n; ++p)
        branch([this, p] {
          stack->bcast(p, "v" + std::to_string(bcasts_used));
          ++bcasts_used;
        });
    }
    // VS-machine internal/output transitions, each driving the client.
    for (const auto& v : candidate_views) {
      if (service.machine.createview_enabled(v))
        branch([this, &v] { service.machine.createview(v); });
      for (ProcId p = 0; p < n; ++p)
        if (service.machine.newview_enabled(v, p))
          branch([this, &v, p] {
            service.machine.newview(v, p);
            recorder.record(trace::NewViewEvent{p, v});
            service.clients[static_cast<std::size_t>(p)]->on_newview(v);
          });
    }
    for (ProcId p = 0; p < n; ++p) {
      for (const auto& g : service.machine.touched_viewids())
        if (service.machine.vs_order_enabled(p, g))
          branch([this, p, g] { service.machine.vs_order(p, g); });
      if (service.machine.gprcv_next(p).has_value())
        branch([this, p] {
          const auto e = service.machine.gprcv(p);
          recorder.record(trace::GprcvEvent{e.p, p, e.m});
          service.clients[static_cast<std::size_t>(p)]->on_gprcv(e.p, e.m);
        });
      if (service.machine.safe_next(p).has_value())
        branch([this, p] {
          const auto e = service.machine.safe(p);
          recorder.record(trace::SafeEvent{e.p, p, e.m});
          service.clients[static_cast<std::size_t>(p)]->on_safe(e.p, e.m);
        });
    }
  }
};

TEST(ExhaustiveSystem, TwoProcessorsOneValueAllSchedules) {
  // Universe: 2 processors (both in P0), one view change available
  // (shrinking to {0}), one client value. Depth 8 covers: bcast, order,
  // both deliveries, both safes, confirms, view change, state exchange.
  Explorer ex(2, 2, /*depth=*/8,
              {core::View{core::ViewId{1, 0}, {0, 1}}, core::View{core::ViewId{2, 0}, {0}}},
              /*bcasts=*/1);
  ex.check_state();
  ex.dfs(0);
  EXPECT_GT(ex.states, 20000u) << "non-trivial scope";
}

TEST(ExhaustiveSystem, TwoProcessorsTwoValuesShallow) {
  Explorer ex(2, 2, /*depth=*/7, {core::View{core::ViewId{1, 1}, {0, 1}}}, /*bcasts=*/2);
  ex.check_state();
  ex.dfs(0);
  EXPECT_GT(ex.states, 5000u);
}

TEST(ExhaustiveSystem, ThreeProcessorsViewChangeFocus) {
  // No client traffic: exhaustively exercise view formation / state
  // exchange schedules for 3 processors with a quorum view and a minority
  // view.
  Explorer ex(3, 3, /*depth=*/8,
              {core::View{core::ViewId{1, 0}, {0, 1}}, core::View{core::ViewId{2, 2}, {2}}},
              /*bcasts=*/0);
  ex.check_state();
  ex.dfs(0);
  EXPECT_GT(ex.states, 1000u);
}

}  // namespace
}  // namespace vsg
