// The versioned Codec API (core/codec.hpp): one Codec<T> per wire type,
// selected by the frame's version byte. Pins (a) round trips under every
// version with exact size accounting, (b) byte-identity between the legacy
// free-function shims and the v2 codec, (c) golden v3 bytes so the compact
// layout cannot drift silently, and (d) the v3-smaller claim the whole PR
// rests on.

#include <gtest/gtest.h>

#include "core/codec.hpp"
#include "core/summary.hpp"
#include "util/serde.hpp"

namespace vsg::wire {
namespace {

Version all_versions[] = {Version::kV1, Version::kV2, Version::kV3};

core::Label lab(std::uint64_t epoch, std::uint32_t seqno, ProcId origin) {
  return core::Label{core::ViewId{epoch, 0}, seqno, origin};
}

core::Summary sample_summary() {
  core::Summary x;
  for (std::uint32_t s = 1; s <= 6; ++s) {
    x.con.emplace(lab(3, s, 0), "value-" + std::to_string(s));
    x.ord.push_back(lab(3, s, 0));
  }
  x.con.emplace(lab(3, 1, 2), "other");
  x.next = 4;
  x.high = core::ViewId{3, 1};
  return x;
}

template <typename T>
void roundtrip(const T& v) {
  for (const Version w : all_versions) {
    util::Encoder e;
    Codec<T>::encode(e, v, w);
    EXPECT_EQ(e.size(), Codec<T>::size(v, w)) << to_string(w);
    util::Decoder d(e.bytes());
    EXPECT_EQ(Codec<T>::decode(d, w), v) << to_string(w);
    EXPECT_TRUE(d.complete()) << to_string(w);
  }
}

TEST(Codec, ViewIdRoundTripsUnderEveryVersion) {
  roundtrip(core::ViewId{0, 0});
  roundtrip(core::ViewId{5, 2});
  roundtrip(core::ViewId{std::uint64_t{1} << 40, 31});
}

TEST(Codec, ViewRoundTripsUnderEveryVersion) {
  roundtrip(core::View{core::ViewId{7, 1}, {0, 1, 2, 5}});
  roundtrip(core::View{core::ViewId{}, {}});
}

TEST(Codec, LabelRoundTripsUnderEveryVersion) {
  roundtrip(lab(0, 1, 0));
  roundtrip(lab(300, 2, 3));
  roundtrip(core::Label{core::ViewId{std::uint64_t{1} << 33, 4}, 1 << 20, 30});
}

TEST(Codec, SummaryRoundTripsUnderEveryVersion) {
  roundtrip(core::Summary{});
  roundtrip(sample_summary());
}

TEST(Codec, DigestAndDeltaRoundTripUnderV3) {
  const core::SummaryDigest g = core::digest(sample_summary());
  util::Encoder e;
  Codec<core::SummaryDigest>::encode(e, g, Version::kV3);
  EXPECT_EQ(e.size(), Codec<core::SummaryDigest>::size(g, Version::kV3));
  util::Decoder d(e.bytes());
  EXPECT_EQ(Codec<core::SummaryDigest>::decode(d, Version::kV3), g);
  EXPECT_TRUE(d.complete());

  const core::SummaryDelta dl = core::delta(sample_summary(), core::SummaryDigest{});
  util::Encoder e2;
  Codec<core::SummaryDelta>::encode(e2, dl, Version::kV3);
  EXPECT_EQ(e2.size(), Codec<core::SummaryDelta>::size(dl, Version::kV3));
  util::Decoder d2(e2.bytes());
  EXPECT_EQ(Codec<core::SummaryDelta>::decode(d2, Version::kV3), dl);
  EXPECT_TRUE(d2.complete());
}

TEST(Codec, LegacyShimsMatchV2Bytes) {
  // The deprecated free functions are pinned to the legacy layout: their
  // bytes must equal the v2 codec's, so existing v1/v2 frames and scenario
  // pins keep decoding bit-identically.
  const core::Summary x = sample_summary();
  util::Encoder legacy;
  core::encode(legacy, x);
  util::Encoder v2;
  Codec<core::Summary>::encode(v2, x, Version::kV2);
  EXPECT_EQ(legacy.bytes(), v2.bytes());
  EXPECT_EQ(core::encoded_size(x), Codec<core::Summary>::size(x, Version::kV2));

  util::Decoder d(legacy.bytes());
  EXPECT_EQ(core::decode_summary(d), x);
  EXPECT_TRUE(d.complete());
}

TEST(Codec, GoldenV3Bytes) {
  // Hand-assembled expected bytes; a layout change must show up here as a
  // deliberate golden update, never as silent drift (see docs/WIRE.md).
  util::Encoder ev;
  Codec<core::ViewId>::encode(ev, core::ViewId{5, 2}, Version::kV3);
  EXPECT_EQ(ev.bytes(), (util::Bytes{0x05, 0x02}));

  // Label (epoch 300, id.origin 1, seqno 2, origin 3) from a fresh chain.
  // The chain's initial predecessor is a default Label (seqno 1), so the
  // deltas are 300, 1, 1, 3 — zigzagged 600, 2, 2, 6; 600 = 0xD8 0x04 in
  // LEB128.
  util::Encoder el;
  Codec<core::Label>::encode(el, core::Label{core::ViewId{300, 1}, 2, 3}, Version::kV3);
  EXPECT_EQ(el.bytes(), (util::Bytes{0xD8, 0x04, 0x02, 0x02, 0x06}));
}

TEST(Codec, ChainedLabelsCostOneOrTwoBytesEach) {
  // The delta-coding claim: consecutive labels of one stream differ only in
  // seqno, so each label after the first costs 4 svarints of mostly zero.
  std::vector<core::Label> run;
  for (std::uint32_t s = 1; s <= 100; ++s) run.push_back(lab(9, s, 2));
  LabelChain chain;
  std::size_t total = 0;
  for (const auto& l : run) total += chain.size(l);
  // First label pays for the epoch; the other 99 are 4 one-byte svarints.
  EXPECT_LE(total, 5 + 99 * 4u);
  // Fixed-width v2 spends 20 bytes per label, unconditionally.
  EXPECT_EQ(Codec<core::Label>::size(run[0], Version::kV2) * run.size(), 2000u);
}

TEST(Codec, V3SummariesAreSmallerThanV2) {
  const core::Summary x = sample_summary();
  EXPECT_LT(Codec<core::Summary>::size(x, Version::kV3),
            Codec<core::Summary>::size(x, Version::kV2) / 2);
  // And the digest is far smaller still than either.
  const core::SummaryDigest g = core::digest(x);
  EXPECT_LT(Codec<core::SummaryDigest>::size(g, Version::kV3),
            Codec<core::Summary>::size(x, Version::kV3) / 2);
}

TEST(Codec, TruncatedV3InputSetsNotOk) {
  const core::Summary x = sample_summary();
  util::Encoder e;
  Codec<core::Summary>::encode(e, x, Version::kV3);
  for (std::size_t keep = 0; keep < e.size(); keep += 3) {
    util::Bytes cut(e.bytes().begin(),
                    e.bytes().begin() + static_cast<std::ptrdiff_t>(keep));
    util::Decoder d(cut);
    (void)Codec<core::Summary>::decode(d, Version::kV3);
    EXPECT_FALSE(d.complete()) << keep;
  }
}

TEST(Codec, KnownVersionPredicate) {
  EXPECT_FALSE(known_version(0));
  EXPECT_TRUE(known_version(1));
  EXPECT_TRUE(known_version(2));
  EXPECT_TRUE(known_version(3));
  EXPECT_FALSE(known_version(4));
  EXPECT_FALSE(known_version(0x7F));
}

}  // namespace
}  // namespace vsg::wire
