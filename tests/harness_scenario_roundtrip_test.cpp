// Scenario writer: write_scenario is an exact inverse of parse_scenario.
// Property-tested over random scenarios plus directed metadata, formatting,
// and error-path cases.

#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/scenario_parser.hpp"
#include "util/rng.hpp"

namespace vsg::harness {
namespace {

// Random scenario on the representable grid: times are nonnegative whole
// microseconds, bcast values have no whitespace/'#'/'|', partition
// components are non-empty.
Scenario random_scenario(util::Rng& rng, int n) {
  Scenario s;
  const int ops = 1 + static_cast<int>(rng.below(25));
  for (int i = 0; i < ops; ++i) {
    const sim::Time at = static_cast<sim::Time>(rng.below(20'000'000));
    switch (rng.below(5)) {
      case 0:
        s.add(at, OpBcast{static_cast<ProcId>(rng.below(n)),
                          "v" + std::to_string(rng.below(1000))});
        break;
      case 1: {
        OpPartition part;
        std::set<ProcId> left, right;
        for (ProcId p = 0; p < n; ++p) (rng.chance(0.5) ? left : right).insert(p);
        if (!left.empty()) part.components.push_back(std::move(left));
        if (!right.empty()) part.components.push_back(std::move(right));
        s.add(at, std::move(part));
        break;
      }
      case 2:
        s.add(at, OpHeal{});
        break;
      case 3:
        s.add(at, OpProcStatus{static_cast<ProcId>(rng.below(n)),
                               static_cast<sim::Status>(rng.below(3))});
        break;
      default: {
        const auto p = static_cast<ProcId>(rng.below(n));
        const auto q = static_cast<ProcId>((p + 1 + rng.below(n - 1)) % n);
        s.add(at, OpLinkStatus{p, q, static_cast<sim::Status>(rng.below(3))});
        break;
      }
    }
  }
  return s;
}

TEST(ScenarioRoundTrip, ParseOfWriteIsIdentity) {
  util::Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const Scenario s = random_scenario(rng, 2 + static_cast<int>(rng.below(5)));
    const std::string text = write_scenario(s);
    const auto parsed = parse_scenario(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << text;
    EXPECT_EQ(*parsed.scenario, s) << text;
  }
}

TEST(ScenarioRoundTrip, MetaRoundTrips) {
  ScenarioMeta meta;
  meta.n = 5;
  meta.seed = 123456789012345ULL;
  meta.until = sim::sec(17);
  meta.wire = 1;
  meta.shards = 4;
  meta.budget = 4096;
  Scenario s;
  s.add(sim::msec(100), OpHeal{});
  const auto parsed = parse_scenario(write_scenario(s, meta));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.meta, meta);
  EXPECT_EQ(*parsed.scenario, s);
}

TEST(ScenarioRoundTrip, EmptyMetaWritesNoConfigLines) {
  Scenario s;
  s.add(0, OpHeal{});
  const std::string text = write_scenario(s);
  EXPECT_EQ(text.find("config"), std::string::npos);
  EXPECT_EQ(parse_scenario(text).meta, ScenarioMeta{});
}

TEST(ScenarioRoundTrip, DurationsUseCoarsestExactUnit) {
  EXPECT_EQ(format_duration(0), "0s");
  EXPECT_EQ(format_duration(sim::sec(3)), "3s");
  EXPECT_EQ(format_duration(sim::msec(1500)), "1500ms");
  EXPECT_EQ(format_duration(sim::msec(2)), "2ms");
  EXPECT_EQ(format_duration(1234), "1234us");
  EXPECT_THROW(format_duration(-1), std::invalid_argument);
}

TEST(ScenarioRoundTrip, UnwritableValuesThrow) {
  Scenario spaces;
  spaces.add(0, OpBcast{0, "two words"});
  EXPECT_THROW(write_scenario(spaces), std::invalid_argument);

  Scenario empty_value;
  empty_value.add(0, OpBcast{0, ""});
  EXPECT_THROW(write_scenario(empty_value), std::invalid_argument);

  Scenario hash;
  hash.add(0, OpBcast{0, "a#b"});
  EXPECT_THROW(write_scenario(hash), std::invalid_argument);

  Scenario empty_component;
  empty_component.add(0, OpPartition{{{0, 1}, {}}});
  EXPECT_THROW(write_scenario(empty_component), std::invalid_argument);

  Scenario no_components;
  no_components.add(0, OpPartition{{}});
  EXPECT_THROW(write_scenario(no_components), std::invalid_argument);
}

TEST(ScenarioRoundTrip, ConfigParseErrors) {
  EXPECT_FALSE(parse_scenario("config n\n").ok());
  EXPECT_FALSE(parse_scenario("config n zero\n").ok());
  EXPECT_FALSE(parse_scenario("config n 0\n").ok());
  EXPECT_FALSE(parse_scenario("config seed -3\n").ok());
  EXPECT_FALSE(parse_scenario("config until soon\n").ok());
  EXPECT_FALSE(parse_scenario("config horizon 3s\n").ok());
  EXPECT_FALSE(parse_scenario("config wire v2\n").ok());
  EXPECT_FALSE(parse_scenario("config wire 0\n").ok());
  EXPECT_FALSE(parse_scenario("config shards 0\n").ok());
  EXPECT_FALSE(parse_scenario("config shards two\n").ok());
  EXPECT_TRUE(
      parse_scenario("config n 4\nconfig seed 9\nconfig until 15s\nconfig wire 2\n").ok());
}

TEST(ScenarioRoundTrip, ShardsMetaRoundTripsAlone) {
  ScenarioMeta meta;
  meta.shards = 2;
  Scenario s;
  s.add(sim::msec(50), OpHeal{});
  const std::string text = write_scenario(s, meta);
  EXPECT_NE(text.find("config shards 2"), std::string::npos);
  const auto parsed = parse_scenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.meta, meta);
  EXPECT_EQ(*parsed.scenario, s);
}

TEST(ScenarioRoundTrip, BudgetMetaRoundTripsAlone) {
  ScenarioMeta meta;
  meta.budget = 256;
  Scenario s;
  s.add(sim::msec(50), OpHeal{});
  const std::string text = write_scenario(s, meta);
  EXPECT_NE(text.find("config budget 256"), std::string::npos);
  const auto parsed = parse_scenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.meta, meta);
  EXPECT_EQ(*parsed.scenario, s);
}

TEST(ScenarioRoundTrip, BadBudgetRejected) {
  EXPECT_FALSE(parse_scenario("config budget 0\n").ok());
  EXPECT_FALSE(parse_scenario("config budget -4\n").ok());
  EXPECT_FALSE(parse_scenario("config budget many\n").ok());
  EXPECT_TRUE(parse_scenario("config budget 64\n").ok());
}

TEST(ScenarioRoundTrip, ConfigLinesMayFollowOps) {
  const auto parsed = parse_scenario("at 1s heal\nconfig n 3\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.meta.n, 3);
  EXPECT_EQ(parsed.scenario->ops.size(), 1u);
}

}  // namespace
}  // namespace vsg::harness
