// Simulated network: good links deliver within delta, bad links drop
// (including in flight), ugly links behave within their envelope, self-sends
// always arrive. These are the channel axioms of Sections 3.2 and 8.

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"

namespace vsg::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  sim::FailureTable failures;
  LinkModel model;
  Network net;
  std::vector<std::vector<std::pair<ProcId, util::Buffer>>> got;

  explicit Fixture(int n, std::uint64_t seed = 1, LinkModel m = LinkModel{})
      : failures(n), model(m), net(sim, failures, m, util::Rng(seed)), got(n) {
    for (ProcId p = 0; p < n; ++p)
      net.attach(p, [this, p](ProcId src, const util::Buffer& pkt) {
        got[static_cast<std::size_t>(p)].emplace_back(src, pkt);
      });
  }
};

util::Bytes bytes(std::initializer_list<std::uint8_t> b) { return util::Bytes(b); }

TEST(Network, GoodLinkDeliversWithinDelta) {
  Fixture f(2);
  f.net.send(0, 1, bytes({42}));
  f.sim.run();
  ASSERT_EQ(f.got[1].size(), 1u);
  EXPECT_EQ(f.got[1][0].first, 0);
  EXPECT_EQ(f.got[1][0].second, bytes({42}));
  EXPECT_LE(f.sim.now(), f.model.delta);
  EXPECT_GE(f.sim.now(), f.model.min_delay);
}

TEST(Network, BadLinkDropsAtSendTime) {
  Fixture f(2);
  f.failures.set_link(0, 1, sim::Status::kBad, 0);
  f.net.send(0, 1, bytes({1}));
  f.sim.run();
  EXPECT_TRUE(f.got[1].empty());
  EXPECT_EQ(f.net.stats().packets_dropped, 1u);
}

TEST(Network, LinkGoingBadInFlightDropsPacket) {
  Fixture f(2);
  f.net.send(0, 1, bytes({1}));
  // Cut the link immediately, before the propagation delay elapses.
  f.failures.set_link(0, 1, sim::Status::kBad, 0);
  f.sim.run();
  EXPECT_TRUE(f.got[1].empty());
}

TEST(Network, DirectionalityRespected) {
  Fixture f(2);
  f.failures.set_link(0, 1, sim::Status::kBad, 0);
  f.net.send(1, 0, bytes({9}));  // reverse direction still good
  f.sim.run();
  ASSERT_EQ(f.got[0].size(), 1u);
}

TEST(Network, SelfSendAlwaysDelivered) {
  Fixture f(2);
  f.failures.set_link_sym(0, 1, sim::Status::kBad, 0);
  f.failures.set_proc(0, sim::Status::kBad, 0);  // even a "bad" proc loops back
  f.net.send(0, 0, bytes({5}));
  f.sim.run();
  ASSERT_EQ(f.got[0].size(), 1u);
}

TEST(Network, BroadcastReachesEveryoneButSelf) {
  Fixture f(4);
  f.net.broadcast(2, bytes({7}));
  f.sim.run();
  EXPECT_TRUE(f.got[2].empty());
  for (ProcId p : {0, 1, 3}) ASSERT_EQ(f.got[static_cast<std::size_t>(p)].size(), 1u);
}

TEST(Network, MulticastHitsListedDestinations) {
  Fixture f(4);
  f.net.multicast(0, {1, 3}, bytes({8}));
  f.sim.run();
  EXPECT_EQ(f.got[1].size(), 1u);
  EXPECT_TRUE(f.got[2].empty());
  EXPECT_EQ(f.got[3].size(), 1u);
}

TEST(Network, StatsCountBytes) {
  Fixture f(2);
  f.net.send(0, 1, bytes({1, 2, 3}));
  f.sim.run();
  EXPECT_EQ(f.net.stats().packets_sent, 1u);
  EXPECT_EQ(f.net.stats().packets_delivered, 1u);
  EXPECT_EQ(f.net.stats().bytes_sent, 3u);
  EXPECT_EQ(f.net.stats().bytes_delivered, 3u);
}

TEST(Network, UglyLinkDropsRoughlyAtConfiguredRate) {
  LinkModel model;
  model.ugly_drop = 0.5;
  Fixture f(2, 99, model);
  f.failures.set_link(0, 1, sim::Status::kUgly, 0);
  for (int i = 0; i < 400; ++i) f.net.send(0, 1, bytes({static_cast<std::uint8_t>(i)}));
  f.sim.run();
  const double rate = static_cast<double>(f.got[1].size()) / 400.0;
  EXPECT_NEAR(rate, 0.5, 0.12);
}

TEST(Network, UglyDeliveriesBoundedByUglyMaxDelay) {
  LinkModel model;
  model.ugly_drop = 0.0;
  Fixture f(2, 3, model);
  f.failures.set_link(0, 1, sim::Status::kUgly, 0);
  for (int i = 0; i < 50; ++i) f.net.send(0, 1, bytes({1}));
  f.sim.run();
  EXPECT_EQ(f.got[1].size(), 50u);
  EXPECT_LE(f.sim.now(), model.ugly_max_delay);
}

TEST(LinkModel, DecideRespectsStatuses) {
  LinkModel model;
  util::Rng rng(5);
  EXPECT_FALSE(model.decide(sim::Status::kBad, rng).has_value());
  for (int i = 0; i < 100; ++i) {
    const auto d = model.decide(sim::Status::kGood, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, model.min_delay);
    EXPECT_LE(*d, model.delta);
  }
}

}  // namespace
}  // namespace vsg::net
