// Inside the Section 8 implementation: watch the Cristian-Schmuck
// membership protocol and the token ring at work — view proposals on
// partition, token circulation statistics, safe notifications, and the
// measured stabilization time compared against the paper's bound
//   b = 9*delta + max{pi + (n+3)*delta, mu}.
//
//   $ ./token_ring_demo

#include <cstdio>

#include "harness/stats.hpp"
#include "harness/world.hpp"

int main() {
  using namespace vsg;

  harness::WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = 5;
  harness::World world(cfg);
  const auto& ring = *world.token_ring();

  std::printf("token ring parameters: delta=%s pi=%s mu=%s\n",
              harness::fmt_time(cfg.ring.delta).c_str(),
              harness::fmt_time(cfg.ring.pi).c_str(),
              harness::fmt_time(cfg.ring.mu).c_str());

  world.recorder().subscribe([&](const trace::TimedEvent& te) {
    if (const auto* v = trace::as<trace::NewViewEvent>(te))
      std::printf("  t=%-9s newview(%s) at processor %d\n",
                  harness::fmt_time(te.at).c_str(), core::to_string(v->v).c_str(), v->p);
  });

  // Steady VS-level traffic from processor 1.
  for (int k = 0; k < 60; ++k)
    world.simulator().at(sim::msec(100 * k + 50), [&world, k] {
      world.vs().gpsnd(1, util::Bytes{static_cast<std::uint8_t>(k)});
    });

  std::printf("== t=1.5s: partition {0,1} | {2,3}\n");
  world.partition_at(sim::msec(1500), {{0, 1}, {2, 3}});
  std::printf("== t=3.5s: heal\n");
  world.heal_at(sim::msec(3500));
  world.run_until(sim::sec(7));

  const auto stats = ring.total_stats();
  std::printf("\nprotocol statistics:\n");
  std::printf("  proposals initiated : %llu\n",
              static_cast<unsigned long long>(stats.proposals));
  std::printf("  views installed     : %llu\n",
              static_cast<unsigned long long>(stats.views_installed));
  std::printf("  token passes        : %llu\n",
              static_cast<unsigned long long>(stats.tokens_processed));
  std::printf("  entries delivered   : %llu\n",
              static_cast<unsigned long long>(stats.entries_delivered));
  std::printf("  safes emitted       : %llu\n",
              static_cast<unsigned long long>(stats.safes_emitted));
  if (world.network() != nullptr) {
    const auto& ns = world.network()->stats();
    std::printf("  packets sent=%llu delivered=%llu dropped=%llu, bytes=%llu\n",
                static_cast<unsigned long long>(ns.packets_sent),
                static_cast<unsigned long long>(ns.packets_delivered),
                static_cast<unsigned long long>(ns.packets_dropped),
                static_cast<unsigned long long>(ns.bytes_sent));
  }

  // Measured stabilization after the heal vs the paper's b.
  const int n = 4;
  const sim::Time b =
      9 * cfg.ring.delta + std::max(cfg.ring.pi + (n + 3) * cfg.ring.delta, cfg.ring.mu);
  const sim::Time d = 3 * (cfg.ring.pi + n * cfg.ring.delta);
  const auto report = world.vs_report({0, 1, 2, 3}, d, sim::sec(6));
  if (report.stability.premise_holds && report.required_lprime.has_value()) {
    std::printf("\nVS-property after heal: l=%s, measured l'=%s vs bound b=%s -> %s\n",
                harness::fmt_time(report.stability.l).c_str(),
                harness::fmt_time(*report.required_lprime).c_str(),
                harness::fmt_time(b).c_str(), report.holds_with(b) ? "HOLDS" : "EXCEEDED");
    std::printf("max send->safe-everywhere lag: %s (bound d=%s)\n",
                harness::fmt_time(report.max_safe_lag).c_str(),
                harness::fmt_time(d).c_str());
  }
  const auto violations = world.check_vs_safety();
  std::printf("VS safety: %s\n", violations.empty() ? "OK" : violations.front().c_str());
  return violations.empty() ? 0 : 1;
}
