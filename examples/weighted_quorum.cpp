// Quorum systems are the pluggable design knob of VStoTO (Section 5: "we
// fix a set Q of quorums ... for example, we can define Q to be the set of
// majorities"). This demo runs the same 2-2 split twice:
//
//   - with majority quorums, NEITHER side of a 4-node 2-2 split has a
//     quorum: the whole system stalls until the partition heals;
//   - with weighted quorums (processor 0 carries weight 3), the side
//     holding processor 0 remains primary and keeps confirming.
//
//   $ ./weighted_quorum

#include <cstdio>
#include <memory>

#include "harness/world.hpp"

using namespace vsg;

namespace {

void run(const char* title, std::shared_ptr<const core::QuorumSystem> quorums) {
  std::printf("== %s ==\n", title);
  harness::WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = 31337;
  cfg.quorums = std::move(quorums);
  harness::World world(cfg);

  world.partition_at(sim::msec(100), {{0, 1}, {2, 3}});
  world.bcast_at(sim::sec(1), 0, "from-side-A");   // side with processor 0
  world.bcast_at(sim::sec(1), 2, "from-side-B");
  world.run_until(sim::sec(4));

  std::printf("  during the 2-2 split:\n");
  for (ProcId p = 0; p < 4; ++p)
    std::printf("    processor %d delivered %zu value(s)\n", p,
                world.stack().process(p).delivered().size());

  world.heal_at(sim::sec(4));
  world.run_until(sim::sec(10));
  std::printf("  after heal: everyone delivered %zu values; TO safety %s\n\n",
              world.stack().process(0).delivered().size(),
              world.check_to_safety().empty() ? "OK" : "VIOLATED");
}

}  // namespace

int main() {
  run("majority quorums: 2-2 split has no primary, everything stalls",
      core::majorities(4));

  // Processor 0 is a weighted tie-breaker: {0, x} is a quorum for any x.
  run("weighted quorums (w = 3,1,1,1): processor 0's side stays primary",
      std::make_shared<core::WeightedQuorums>(std::vector<int>{3, 1, 1, 1}));

  std::printf("any pairwise-intersecting quorum family preserves safety; the choice\n"
              "only moves which partitions stay live (see bench_quorum_availability).\n");
  return 0;
}
