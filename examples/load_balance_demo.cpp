// Load balancing over the raw VS interface (the application family of the
// paper's follow-on work): a pool of tasks is divided among the current
// view's members by rank; partitions cause both sides to re-slice and keep
// working (at-least-once); merges reconcile the done-sets.
//
//   $ ./load_balance_demo

#include <cstdio>

#include "app/load_balancer.hpp"
#include "harness/world.hpp"

int main() {
  using namespace vsg;

  harness::WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = 2718;
  harness::World world(cfg);

  app::LoadBalancerConfig lb_cfg;
  lb_cfg.total_tasks = 60;
  lb_cfg.task_duration = sim::msec(25);
  app::LoadBalancer lb(world.vs(), world.simulator(), lb_cfg);

  auto report = [&](const char* when) {
    std::printf("%s\n", when);
    for (ProcId p = 0; p < 4; ++p)
      std::printf("  worker %d: executed %llu, knows %zu/%u done\n", p,
                  static_cast<unsigned long long>(lb.executed(p)), lb.done(p).size(),
                  lb_cfg.total_tasks);
    std::printf("  total executions: %llu (tasks: %u)\n\n",
                static_cast<unsigned long long>(lb.total_executions()), lb_cfg.total_tasks);
  };

  std::printf("60 tasks across 4 workers; partition at 300ms, heal at 800ms\n\n");
  world.partition_at(sim::msec(300), {{0, 1}, {2, 3}});
  world.heal_at(sim::msec(800));

  world.run_until(sim::msec(600));
  report("during the partition (both sides re-sliced all remaining work):");
  world.run_until(sim::sec(6));
  report("after heal and completion:");

  const bool complete = lb.all_done(0) && lb.all_done(1) && lb.all_done(2) && lb.all_done(3);
  std::printf("all workers know all tasks done: %s\n", complete ? "yes" : "NO");
  std::printf("duplicated executions (partition cost): %llu\n",
              static_cast<unsigned long long>(lb.total_executions() - lb_cfg.total_tasks));
  return complete ? 0 : 1;
}
