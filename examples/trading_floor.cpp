// Trading floor: the workload class the paper's introduction motivates
// (Isis powered the New York Stock Exchange and the Swiss Electronic
// Bourse — "timely and consistent data has to be delivered and filtered at
// multiple trading floor locations").
//
// Each trading site runs a replica of the order book. Orders are submitted
// at any site and disseminated through totally ordered broadcast, so every
// site matches trades identically — no coordination beyond TO is needed,
// because deterministic matching over one total order IS the replicated
// state machine. A partition leaves the minority site read-only (its view
// has no quorum); the majority floor keeps trading; healing replays the
// missed orders at the minority in the same order everyone else saw.
//
//   $ ./trading_floor

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "harness/world.hpp"
#include "util/serde.hpp"

using namespace vsg;

namespace {

struct Order {
  bool buy = true;
  int price = 0;     // integer ticks
  int quantity = 0;
  ProcId site = 0;
};

core::Value encode_order(const Order& o) {
  util::Encoder e;
  e.boolean(o.buy);
  e.u32(static_cast<std::uint32_t>(o.price));
  e.u32(static_cast<std::uint32_t>(o.quantity));
  const auto& b = e.bytes();
  return core::Value(b.begin(), b.end());
}

std::optional<Order> decode_order(const core::Value& v, ProcId site) {
  util::Bytes bytes(v.begin(), v.end());
  util::Decoder d(bytes);
  Order o;
  o.buy = d.boolean();
  o.price = static_cast<int>(d.u32());
  o.quantity = static_cast<int>(d.u32());
  o.site = site;
  if (!d.complete()) return std::nullopt;
  return o;
}

// A deterministic limit order book: bids and asks keyed by price; a new
// order matches against the best opposite price while it crosses.
class OrderBook {
 public:
  void apply(const Order& order, std::vector<std::string>* trades) {
    Order o = order;
    auto& opposite = o.buy ? asks_ : bids_;
    while (o.quantity > 0 && !opposite.empty()) {
      const auto best = o.buy ? opposite.begin() : std::prev(opposite.end());
      const bool crosses = o.buy ? o.price >= best->first : o.price <= best->first;
      if (!crosses) break;
      const int traded = std::min(o.quantity, best->second);
      if (trades != nullptr)
        trades->push_back(std::to_string(traded) + "@" + std::to_string(best->first));
      o.quantity -= traded;
      best->second -= traded;
      if (best->second == 0) opposite.erase(best);
    }
    if (o.quantity > 0) (o.buy ? bids_ : asks_)[o.price] += o.quantity;
  }

  std::string depth() const {
    const int bid = bids_.empty() ? 0 : bids_.rbegin()->first;
    const int ask = asks_.empty() ? 0 : asks_.begin()->first;
    return "best bid " + std::to_string(bid) + " / best ask " + std::to_string(ask);
  }

  bool operator==(const OrderBook&) const = default;

 private:
  std::map<int, int> bids_;  // price -> open quantity
  std::map<int, int> asks_;
};

}  // namespace

int main() {
  harness::WorldConfig cfg;
  cfg.n = 3;  // three trading sites
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = 1987;
  harness::World world(cfg);

  // One to::Client per trading site: each site's order book consumes the
  // common TO order independently.
  std::vector<OrderBook> books(3);
  std::vector<std::vector<std::string>> trades(3);
  std::vector<std::unique_ptr<to::CallbackClient>> sites;
  for (ProcId p = 0; p < 3; ++p) {
    sites.push_back(std::make_unique<to::CallbackClient>(
        [&, p](ProcId origin, const core::Value& v) {
          if (const auto order = decode_order(v, origin))
            books[static_cast<std::size_t>(p)].apply(
                *order, &trades[static_cast<std::size_t>(p)]);
        }));
    world.stack().attach(p, *sites.back());
  }

  auto submit = [&world](sim::Time t, ProcId site, bool buy, int price, int qty) {
    world.bcast_at(t, site, encode_order(Order{buy, price, qty, site}));
  };

  std::printf("three trading sites; orders from all of them\n");
  submit(sim::msec(100), 0, /*buy=*/false, 101, 50);  // ask 50@101
  submit(sim::msec(120), 1, /*buy=*/false, 102, 30);  // ask 30@102
  submit(sim::msec(200), 2, /*buy=*/true, 101, 20);   // lifts 20@101
  submit(sim::msec(250), 0, /*buy=*/true, 103, 70);   // sweeps the book

  std::printf("t=1s: site 2 is partitioned away (reads only — no quorum)\n");
  world.partition_at(sim::sec(1), {{0, 1}, {2}});
  submit(sim::msec(1500), 1, /*buy=*/false, 104, 10);
  submit(sim::msec(1600), 0, /*buy=*/true, 104, 10);  // trades on the main floor
  world.run_until(sim::sec(3));
  std::printf("  main floor book:   %s (%zu trades)\n", books[0].depth().c_str(),
              trades[0].size());
  std::printf("  isolated site book: %s (%zu trades — stale but consistent)\n",
              books[2].depth().c_str(), trades[2].size());

  std::printf("t=3s: heal; the isolated site replays the missed orders\n");
  world.heal_at(sim::sec(3));
  world.run_until(sim::sec(10));

  bool identical = books[0] == books[1] && books[1] == books[2] &&
                   trades[0] == trades[1] && trades[1] == trades[2];
  for (ProcId p = 0; p < 3; ++p)
    std::printf("  site %d: %s, trades:", p, books[static_cast<std::size_t>(p)].depth().c_str());
  std::printf("\n");
  for (const auto& t : trades[0]) std::printf("  trade %s\n", t.c_str());

  const auto violations = world.check_to_safety();
  std::printf("\nall sites identical: %s; TO safety: %s\n", identical ? "yes" : "NO",
              violations.empty() ? "OK" : violations.front().c_str());
  return (identical && violations.empty()) ? 0 : 1;
}
