// Quickstart: build a 3-processor totally ordered broadcast stack on the
// simulated network, broadcast a few values from different processors, and
// print the identical delivery order every processor observes.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the library: World assembles the
// simulator, failure model, network, the Section 8 token-ring VS
// implementation and one VStoTO process per processor; clients interact
// only through bcast and a per-processor to::Client.

#include <cstdio>

#include "harness/world.hpp"

int main() {
  using namespace vsg;

  harness::WorldConfig cfg;
  cfg.n = 3;                                   // three processors, all in P0
  cfg.backend = harness::Backend::kTokenRing;  // the paper's implementation
  cfg.seed = 2024;
  harness::World world(cfg);

  // Print deliveries as they happen at processor 0: attach a to::Client
  // there (each processor gets its own client; the others stay silent).
  to::CallbackClient printer([&](ProcId origin, const core::Value& a) {
    std::printf("  t=%-8lld processor 0 delivers \"%s\" (from %d)\n",
                static_cast<long long>(world.simulator().now()), a.c_str(), origin);
  });
  world.stack().attach(0, printer);

  // Each processor broadcasts two values.
  std::printf("submitting six values...\n");
  for (int round = 0; round < 2; ++round)
    for (ProcId p = 0; p < 3; ++p)
      world.bcast_at(sim::msec(10 + 30 * round), p,
                     "msg" + std::to_string(round) + "-from-" + std::to_string(p));

  world.run_until(sim::sec(2));

  // Every processor delivered the same sequence.
  std::printf("\nfinal delivery order (identical at every processor):\n");
  for (ProcId p = 0; p < 3; ++p) {
    std::printf("  processor %d:", p);
    for (const auto& [origin, value] : world.stack().process(p).delivered())
      std::printf(" %s", value.c_str());
    std::printf("\n");
  }

  // The recorded trace provably satisfies the TO specification.
  const auto violations = world.check_to_safety();
  std::printf("\nTO safety check: %s\n",
              violations.empty() ? "OK (trace is a TO-machine behaviour)"
                                 : violations.front().c_str());

  // Every layer reported into the world's shared metrics registry.
  const auto& m = world.metrics();
  const auto* lat = m.find_histogram("to.brcv_latency.all");
  std::printf("\nobservability (world.metrics()):\n");
  std::printf("  net.packets_sent     = %llu\n",
              static_cast<unsigned long long>(m.find_counter("net.packets_sent")->value()));
  std::printf("  ring.token_rotations = %llu\n",
              static_cast<unsigned long long>(m.find_counter("ring.token_rotations")->value()));
  std::printf("  bcast->brcv latency  = p50 <= %lldus, max %lldus over %llu deliveries\n",
              static_cast<long long>(lat->quantile_upper(0.5)),
              static_cast<long long>(lat->max()),
              static_cast<unsigned long long>(lat->count()));
  return violations.empty() ? 0 : 1;
}
