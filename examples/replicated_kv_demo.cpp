// Sequentially consistent replicated key-value store (the application of
// the paper's footnote 3): reads are local, writes go through totally
// ordered broadcast, every replica applies the same write sequence.
//
//   $ ./replicated_kv_demo
//
// The demo runs a bank-account workload with concurrent writers on
// different processors, a partition in the middle, and shows that after
// healing every replica agrees — with the independent sequential-
// consistency checker auditing the whole history.

#include <cstdio>

#include "app/replicated_kv.hpp"
#include "app/seqcst_checker.hpp"
#include "harness/world.hpp"

int main() {
  using namespace vsg;

  harness::WorldConfig cfg;
  cfg.n = 3;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = 99;
  harness::World world(cfg);
  app::ReplicatedKV kv(world.stack());  // attaches one to::Client per replica
  app::SeqCstChecker checker(3);

  // The KV owns the per-processor clients; the legacy global callback is
  // still free, so observers can tap the same delivery stream.
  std::size_t to_deliveries = 0;
  world.stack().set_delivery(
      [&](ProcId, ProcId, const core::Value&) { ++to_deliveries; });

  auto write = [&](sim::Time t, ProcId p, const std::string& key, const std::string& value) {
    world.simulator().at(t, [&, t, p, key, value] {
      std::printf("  t=%-7lld processor %d writes %s=%s\n",
                  static_cast<long long>(t), p, key.c_str(), value.c_str());
      checker.on_submit(p, key, value);
      kv.write(p, key, value);
    });
  };
  auto read = [&](sim::Time t, ProcId p, const std::string& key) {
    world.simulator().at(t, [&, t, p, key] {
      const auto v = kv.read(p, key);
      checker.on_read(p, key, v, kv.applied(p).size());
      std::printf("  t=%-7lld processor %d reads  %s -> %s\n",
                  static_cast<long long>(t), p, key.c_str(),
                  v ? v->c_str() : "(missing)");
    });
  };

  std::printf("== concurrent writers on an account ledger\n");
  write(sim::msec(10), 0, "alice", "100");
  write(sim::msec(10), 1, "bob", "50");
  write(sim::msec(200), 2, "alice", "75");
  read(sim::msec(500), 0, "alice");
  read(sim::msec(500), 2, "bob");

  std::printf("== t=1s: partition {0,1} | {2}; the majority keeps going\n");
  world.partition_at(sim::sec(1), {{0, 1}, {2}});
  write(sim::msec(1500), 0, "carol", "10");
  read(sim::msec(2500), 2, "carol");  // stale but consistent: not applied yet

  std::printf("== t=3s: heal; replica 2 catches up\n");
  world.heal_at(sim::sec(3));
  read(sim::sec(6), 2, "carol");

  // Feed applies to the checker as the run progresses.
  std::vector<std::size_t> seen(3, 0);
  while (world.simulator().now() < sim::sec(8) && world.simulator().step()) {
    for (ProcId p = 0; p < 3; ++p)
      while (seen[static_cast<std::size_t>(p)] < kv.applied(p).size()) {
        checker.on_apply(p, kv.applied(p)[seen[static_cast<std::size_t>(p)]]);
        ++seen[static_cast<std::size_t>(p)];
      }
  }

  std::printf("\nfinal stores:\n");
  for (ProcId p = 0; p < 3; ++p) {
    std::printf("  replica %d:", p);
    for (const auto& [k, v] : kv.store(p)) std::printf(" %s=%s", k.c_str(), v.c_str());
    std::printf("\n");
  }
  std::printf("\nsequential consistency audit: %s\n",
              checker.ok() ? "OK" : checker.violations().front().c_str());
  std::printf("common write order has %zu writes\n", checker.common_order().size());
  std::printf("%zu TO deliveries; %llu packets on the wire (world.metrics())\n",
              to_deliveries,
              static_cast<unsigned long long>(
                  world.metrics().find_counter("net.packets_sent")->value()));
  return checker.ok() ? 0 : 1;
}
