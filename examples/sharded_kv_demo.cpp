// Cross-shard consistency demo (docs/SHARDING.md): the sharded KV keeps
// footnote-3 sequential consistency *per shard*, and this program shows —
// with the independent CrossShardChecker as the judge — exactly where the
// combined history breaks and how per-shard barriers repair it.
//
// Two shards over one substrate, deliberately asymmetric: shard 0's token
// ring launches its token every 500ms, shard 1's every 10ms. Phase 1 runs
// the classic anomaly with no fences: processor 0 writes x (slow shard)
// then y (fast shard); processor 1 reads y — already applied — then x —
// still missing. No serialization can order those four operations, and the
// checker proves it by finding the cycle
//   W(x) -po-> W(y) -rf-> R(y) -po-> R(x) -fr-> W(x).
// Phase 2 reruns the same workload with the fence discipline: the writer
// barriers the slow shard before touching the fast one, the reader barriers
// the slow shard before trusting the cross-shard implication. The checker
// comes back clean and the reader observes x=1.
//
// Exit status 0 iff phase 1 FINDS the violation and phase 2 is clean.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "app/seqcst_checker.hpp"
#include "app/sharded_kv.hpp"
#include "harness/world.hpp"

using namespace vsg;

namespace {

// First key of the family "<base>0", "<base>1", ... that the router places
// on `shard` (clients and this demo compute the same placement).
std::string key_on(const app::ShardRouter& router, int shard, char base) {
  for (int i = 0;; ++i) {
    const std::string key = std::string(1, base) + std::to_string(i);
    if (router.shard_of(key) == shard) return key;
  }
}

struct PhaseResult {
  std::vector<std::string> violations;
  std::optional<std::string> x_read;  // the reader's final view of x
};

PhaseResult run_phase(bool with_barriers) {
  harness::WorldConfig cfg;
  cfg.n = 3;
  cfg.shards = 2;
  membership::TokenRingConfig slow;
  slow.pi = sim::msec(500);  // shard 0: the token is rare — ordering is slow
  membership::TokenRingConfig fast;
  fast.pi = sim::msec(10);  // shard 1: ordering is near-instant
  cfg.shard_rings = {slow, fast};
  cfg.seed = 7;
  harness::World world(cfg);

  std::vector<to::Service*> services{&world.stack(0), &world.stack(1)};
  app::ShardedKV kv(services);
  app::CrossShardChecker checker(2);

  const std::string kx = key_on(kv.router(), 0, 'x');  // slow shard
  const std::string ky = key_on(kv.router(), 1, 'y');  // fast shard

  auto read = [&](ProcId p, const std::string& key) {
    const int shard = kv.shard_of(key);
    const auto result = kv.read(p, key);
    checker.on_read(p, shard, key, result, kv.shard(shard).applied(p).size());
    return result;
  };

  PhaseResult out;
  if (!with_barriers) {
    // Writer: x then y, back to back — program order crosses the shards.
    world.simulator().at(sim::sec(2), [&] {
      checker.on_write(0, 0, kx, "1");
      kv.write(0, kx, "1");
      checker.on_write(0, 1, ky, "1");
      kv.write(0, ky, "1");
    });
    // Reader, 200ms later: the fast shard has applied y long ago, the slow
    // shard has not even seen a token carrying x yet.
    world.simulator().at(sim::msec(2200), [&] {
      read(1, ky);
      out.x_read = read(1, kx);
    });
  } else {
    // Writer-side fence: y is only submitted once the slow shard has
    // applied x at the writer.
    world.simulator().at(sim::sec(2), [&] {
      checker.on_write(0, 0, kx, "1");
      kv.write(0, kx, "1");
      kv.barrier_for(kx, 0, [&](std::size_t) {
        checker.on_write(0, 1, ky, "1");
        kv.write(0, ky, "1");
      });
    });
    // Reader-side fence: after observing the fast-shard write, fence the
    // slow shard before reading from it.
    world.simulator().at(sim::sec(8), [&] {
      read(1, ky);
      kv.barrier_for(kx, 1, [&](std::size_t) { out.x_read = read(1, kx); });
    });
  }
  world.run_until(sim::sec(20));

  // Feed each shard's common order (all replicas must agree on it first —
  // that is the per-shard guarantee the cross-shard checker builds on).
  for (int k = 0; k < kv.shards(); ++k) {
    for (ProcId p = 1; p < 3; ++p)
      if (kv.shard(k).applied(p).size() != kv.shard(k).applied(0).size()) {
        out.violations.push_back("shard " + std::to_string(k) +
                                 " replicas diverge at quiescence");
        return out;
      }
    for (const auto& w : kv.shard(k).applied(0)) checker.on_order(k, w);
  }
  out.violations = checker.check();
  return out;
}

}  // namespace

int main() {
  std::printf("-- phase 1: no fences (expecting a cross-shard violation) --\n");
  const PhaseResult broken = run_phase(/*with_barriers=*/false);
  for (const auto& v : broken.violations) std::printf("  %s\n", v.c_str());
  const bool found = !broken.violations.empty();
  std::printf("checker verdict: %s\n\n",
              found ? "VIOLATION FOUND (as constructed)" : "clean — demo failed");

  std::printf("-- phase 2: per-shard barriers (expecting a clean history) --\n");
  const PhaseResult fenced = run_phase(/*with_barriers=*/true);
  for (const auto& v : fenced.violations) std::printf("  %s\n", v.c_str());
  const bool clean = fenced.violations.empty() && fenced.x_read == "1";
  std::printf("checker verdict: %s (reader saw x=%s)\n", clean ? "clean" : "VIOLATIONS",
              fenced.x_read ? fenced.x_read->c_str() : "missing");

  return found && clean ? 0 : 1;
}
