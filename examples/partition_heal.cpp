// Partition & heal walkthrough: five processors split 3-2; the majority
// side keeps confirming client values, the minority stalls (no quorum, no
// primary view); after the network heals, the state-exchange recovery of
// Section 5 merges both histories into one total order.
//
//   $ ./partition_heal
//
// The run narrates view changes and deliveries, then evaluates the paper's
// conditional properties (VS-property / TO-property) over the recorded
// timed trace.

#include <cstdio>

#include "harness/stats.hpp"
#include "harness/world.hpp"

int main() {
  using namespace vsg;

  harness::WorldConfig cfg;
  cfg.n = 5;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = 7;
  harness::World world(cfg);

  // Narrate view changes and confirmed deliveries at two observers.
  world.recorder().subscribe([&](const trace::TimedEvent& te) {
    if (const auto* v = trace::as<trace::NewViewEvent>(te))
      std::printf("  t=%-9s newview at %d: %s\n",
                  harness::fmt_time(te.at).c_str(), v->p, core::to_string(v->v).c_str());
    if (const auto* b = trace::as<trace::BrcvEvent>(te))
      if (b->dest == 0 || b->dest == 3)
        std::printf("  t=%-9s processor %d delivers \"%s\"\n",
                    harness::fmt_time(te.at).c_str(), b->dest, b->a.c_str());
  });

  std::printf("== t=100ms: partition {0,1,2} | {3,4}\n");
  world.partition_at(sim::msec(100), {{0, 1, 2}, {3, 4}});

  std::printf("== t=2s: both sides submit values\n");
  world.bcast_at(sim::sec(2), 0, "written-on-majority-side");
  world.bcast_at(sim::sec(2), 4, "written-on-minority-side");

  std::printf("== t=4s: heal\n");
  world.heal_at(sim::sec(4));
  world.run_until(sim::sec(12));

  std::printf("\nfinal delivery sequences:\n");
  for (ProcId p = 0; p < 5; ++p) {
    std::printf("  processor %d:", p);
    for (const auto& [origin, value] : world.stack().process(p).delivered())
      std::printf(" \"%s\"", value.c_str());
    std::printf("\n");
  }

  const auto to_violations = world.check_to_safety();
  const auto vs_violations = world.check_vs_safety();
  std::printf("\nsafety: TO %s, VS %s\n", to_violations.empty() ? "OK" : "VIOLATED",
              vs_violations.empty() ? "OK" : "VIOLATED");

  // After the heal, the stabilized component is everyone.
  const sim::Time d = 3 * (cfg.ring.pi + 5 * cfg.ring.delta);
  const auto report = world.to_report({0, 1, 2, 3, 4}, d, sim::sec(10));
  if (report.stability.premise_holds && report.required_lprime.has_value())
    std::printf("TO-property: stabilized at l=%s, required l'=%s (d=%s)\n",
                harness::fmt_time(report.stability.l).c_str(),
                harness::fmt_time(*report.required_lprime).c_str(),
                harness::fmt_time(d).c_str());

  return (to_violations.empty() && vs_violations.empty()) ? 0 : 1;
}
