// Scenario runner: execute a text scenario (see harness/scenario_parser.hpp
// for the format) against the full stack and report deliveries, safety
// verdicts, and protocol statistics.
//
//   $ ./scenario_runner                      # runs a built-in demo scenario
//   $ ./scenario_runner my.scn --n 5 --seed 7 --backend ring --until 20s
//
// Exit status is nonzero if any safety checker flags the run.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "harness/scenario_parser.hpp"
#include "harness/timeline.hpp"
#include "harness/stats.hpp"
#include "harness/world.hpp"

using namespace vsg;

namespace {

const char* kDefaultScenario = R"(# built-in demo: partition, traffic on both sides, heal
at 100ms partition 0,1,2 | 3,4
at 1s    bcast 0 alpha
at 1s    bcast 3 bravo
at 2s    bcast 1 charlie
at 3s    heal
at 5s    bcast 4 delta
)";

struct Options {
  std::string file;
  int n = 5;
  int shards = 1;
  std::uint64_t seed = 1;
  harness::Backend backend = harness::Backend::kTokenRing;
  sim::Time until = sim::sec(15);
  bool timeline = false;
  std::string timeline_out;  // vsg-timeseries-v1 dump (docs/OBSERVABILITY.md)
  // Explicit flags beat `config` directives in the scenario file, which in
  // turn beat the defaults above.
  bool n_given = false;
  bool shards_given = false;
  bool seed_given = false;
  bool until_given = false;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--n") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.n = std::atoi(v);
      opt.n_given = true;
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.shards = std::atoi(v);
      opt.shards_given = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
      opt.seed_given = true;
    } else if (arg == "--backend") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "ring") == 0)
        opt.backend = harness::Backend::kTokenRing;
      else if (std::strcmp(v, "spec") == 0)
        opt.backend = harness::Backend::kSpec;
      else
        return false;
    } else if (arg == "--until") {
      const char* v = next();
      if (v == nullptr) return false;
      const auto t = harness::parse_duration(v);
      if (!t.has_value()) return false;
      opt.until = *t;
      opt.until_given = true;
    } else if (arg == "--timeline") {
      opt.timeline = true;
    } else if (arg == "--timeline-out") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.timeline_out = v;
    } else if (arg.rfind("--timeline-out=", 0) == 0) {
      opt.timeline_out = arg.substr(15);
    } else if (arg[0] != '-') {
      opt.file = arg;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: %s [scenario-file] [--n N] [--shards K] [--seed S] "
                 "[--backend ring|spec] [--until 20s] [--timeline] "
                 "[--timeline-out PATH]\n",
                 argv[0]);
    return 2;
  }

  std::string text = kDefaultScenario;
  if (!opt.file.empty()) {
    std::ifstream in(opt.file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", opt.file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  } else {
    std::printf("(no scenario file given; running the built-in demo)\n\n%s\n",
                kDefaultScenario);
  }

  const auto parsed = harness::parse_scenario(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", parsed.error.c_str());
    return 2;
  }

  if (!opt.n_given && parsed.meta.n.has_value()) opt.n = *parsed.meta.n;
  if (!opt.shards_given && parsed.meta.shards.has_value()) opt.shards = *parsed.meta.shards;
  if (!opt.seed_given && parsed.meta.seed.has_value()) opt.seed = *parsed.meta.seed;
  if (!opt.until_given && parsed.meta.until.has_value()) opt.until = *parsed.meta.until;

  if (opt.shards < 1 || opt.shards > harness::kMaxShards) {
    std::fprintf(stderr,
                 "scenario needs %d shards, but this build supports 1..%d "
                 "(docs/SHARDING.md) — refusing to run under a different topology\n",
                 opt.shards, harness::kMaxShards);
    return 2;
  }

  harness::WorldConfig cfg;
  cfg.n = opt.n;
  cfg.shards = opt.shards;
  cfg.backend = opt.backend;
  cfg.seed = opt.seed;
  cfg.sampler.enabled = !opt.timeline_out.empty();
  if (parsed.meta.wire.has_value()) {
    if (!wire::known_version(static_cast<std::uint8_t>(*parsed.meta.wire))) {
      std::fprintf(stderr,
                   "scenario pins wire v%d, but this build speaks v1, v2 and v3 "
                   "(docs/WIRE.md)\n",
                   *parsed.meta.wire);
      return 2;
    }
    cfg.ring.wire = static_cast<membership::WireFormat>(*parsed.meta.wire);
  }
  if (parsed.meta.budget.has_value()) {
    // Budget pins replay with lanes on, same pairing as chaos_runner
    // --budget (docs/FLOWCONTROL.md).
    cfg.ring.board_budget_bytes = static_cast<std::size_t>(*parsed.meta.budget);
    cfg.ring.lanes = true;
  }
  std::optional<harness::World> world;
  try {
    world.emplace(cfg);
    parsed.scenario->apply(*world);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 2;
  }

  for (int k = 0; k < world->shards(); ++k) {
    const std::string tag = world->shards() > 1 ? " [shard" + std::to_string(k) + "]" : "";
    world->recorder(k).subscribe([&, tag](const trace::TimedEvent& te) {
      if (const auto* v = trace::as<trace::NewViewEvent>(te))
        std::printf("t=%-10s newview %s at %d%s\n", harness::fmt_time(te.at).c_str(),
                    core::to_string(v->v).c_str(), v->p, tag.c_str());
      if (const auto* b = trace::as<trace::BrcvEvent>(te))
        std::printf("t=%-10s brcv \"%s\" at %d (from %d)%s\n",
                    harness::fmt_time(te.at).c_str(), b->a.c_str(), b->dest, b->origin,
                    tag.c_str());
    });
  }

  world->run_until(opt.until);

  std::printf("\n-- final state --\n");
  for (ProcId p = 0; p < opt.n; ++p) {
    std::printf("processor %d delivered:", p);
    for (int k = 0; k < world->shards(); ++k)
      for (const auto& [origin, value] : world->stack(k).process(p).delivered())
        std::printf(" %s", value.c_str());
    std::printf("\n");
  }

  if (opt.timeline) {
    const auto tl = harness::build_timeline(world->recorder().events(), opt.n, opt.n);
    std::printf("\n%s", harness::render_timeline(tl).c_str());
  }

  if (!opt.timeline_out.empty()) {
    if (world->write_timeline(opt.timeline_out)) {
      std::printf("\ntimeline written to %s", opt.timeline_out.c_str());
      for (const auto& e : world->sampler()->health().events())
        std::printf("\n  %s", obs::to_verdict(e).c_str());
      std::printf("\n");
    } else {
      std::fprintf(stderr, "cannot write %s\n", opt.timeline_out.c_str());
      return 2;
    }
  }

  bool clean = true;
  for (int k = 0; k < world->shards(); ++k) {
    const auto to_violations = world->check_to_safety(k);
    const auto vs_violations = world->check_vs_safety(k);
    clean = clean && to_violations.empty() && vs_violations.empty();
    const std::string tag = world->shards() > 1 ? "shard" + std::to_string(k) + " " : "";
    std::printf("\n%sTO safety: %s\n", tag.c_str(),
                to_violations.empty() ? "OK" : to_violations.front().c_str());
    std::printf("%sVS safety: %s\n", tag.c_str(),
                vs_violations.empty() ? "OK" : vs_violations.front().c_str());
    if (world->token_ring(k) != nullptr) {
      const auto stats = world->token_ring(k)->total_stats();
      std::printf("%sprotocol: %llu proposals, %llu views, %llu token passes\n",
                  tag.c_str(), static_cast<unsigned long long>(stats.proposals),
                  static_cast<unsigned long long>(stats.views_installed),
                  static_cast<unsigned long long>(stats.tokens_processed));
    }
  }
  return clean ? 0 : 1;
}
