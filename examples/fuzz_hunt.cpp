// Fuzz hunter: run many random chaos scenarios (seeded, fully reproducible)
// against the full stack and report any seed whose trace violates the TO or
// VS specifications or fails to recover after stabilization. This is the
// development workhorse: every schedule-dependent protocol bug found while
// building this repository would have printed a seed here.
//
//   $ ./fuzz_hunt                 # 50 seeds, n = 5
//   $ ./fuzz_hunt 500 6           # 500 seeds, n = 6

#include <cstdio>
#include <cstdlib>

#include "harness/scenario.hpp"
#include "harness/world.hpp"

using namespace vsg;

namespace {

struct Verdict {
  bool safe = true;
  bool recovered = true;
  std::string detail;
};

Verdict run_seed(std::uint64_t seed, int n) {
  harness::WorldConfig cfg;
  cfg.n = n;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = seed;
  cfg.link.ugly_corrupt = 0.25;
  harness::World world(cfg);
  util::Rng rng(seed * 48271 + 3);

  // Random chaos for 6 simulated seconds, then stabilize everything.
  std::vector<std::set<ProcId>> full{{}};
  for (ProcId p = 0; p < n; ++p) full[0].insert(p);
  harness::random_churn(n, 20, sim::msec(100), sim::sec(6), full, rng).apply(world);
  const int values = 25;
  harness::random_traffic(n, values, sim::msec(100), sim::sec(8), rng).apply(world);
  // Random processor failures, healed before the end.
  for (int k = 0; k < 3; ++k) {
    const auto victim = static_cast<ProcId>(rng.below(n));
    const sim::Time down = sim::msec(500) + rng.range(0, sim::sec(4));
    world.proc_status_at(down, victim,
                         rng.chance(0.5) ? sim::Status::kBad : sim::Status::kUgly);
    world.proc_status_at(down + rng.range(sim::msec(200), sim::sec(1)), victim,
                         sim::Status::kGood);
  }
  world.simulator().at(sim::sec(6), [&world, n] {
    for (ProcId p = 0; p < n; ++p)
      if (world.failures().proc(p) != sim::Status::kGood)
        world.failures().set_proc(p, sim::Status::kGood, world.simulator().now());
  });
  world.run_until(sim::sec(25));

  Verdict verdict;
  const auto to_violations = world.check_to_safety();
  const auto vs_violations = world.check_vs_safety();
  if (!to_violations.empty()) {
    verdict.safe = false;
    verdict.detail = "TO: " + to_violations.front();
  } else if (!vs_violations.empty()) {
    verdict.safe = false;
    verdict.detail = "VS: " + vs_violations.front();
  }
  const auto& reference = world.stack().process(0).delivered();
  if (reference.size() != static_cast<std::size_t>(values)) {
    verdict.recovered = false;
    verdict.detail += " delivered " + std::to_string(reference.size()) + "/" +
                      std::to_string(values);
  }
  for (ProcId p = 1; p < n; ++p)
    if (world.stack().process(p).delivered() != reference) {
      verdict.recovered = false;
      verdict.detail += " divergence at " + std::to_string(p);
      break;
    }
  return verdict;
}

}  // namespace

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 50;
  const int n = argc > 2 ? std::atoi(argv[2]) : 5;
  std::printf("fuzzing %d seeds at n=%d (chaos: churn + crashes + ugliness + corruption)\n",
              seeds, n);
  int bad = 0;
  for (int s = 1; s <= seeds; ++s) {
    const auto verdict = run_seed(static_cast<std::uint64_t>(s), n);
    if (!verdict.safe || !verdict.recovered) {
      ++bad;
      std::printf("  seed %d: %s%s —%s\n", s, verdict.safe ? "" : "UNSAFE ",
                  verdict.recovered ? "" : "UNRECOVERED", verdict.detail.c_str());
    }
    if (s % 10 == 0) std::printf("  ... %d/%d done, %d bad\n", s, seeds, bad);
  }
  std::printf(bad == 0 ? "all %d seeds clean\n" : "%d seeds clean, SEE ABOVE\n",
              seeds - bad);
  return bad == 0 ? 0 : 1;
}
