// E3 — Theorem 7.1/7.2: if the VS layer satisfies VS-property(b, d, Q),
// the full stack satisfies TO-property(b + d, d, Q). We run the complete
// system through a partition that stabilizes to a quorum component, and
// measure (a) the TO-level stabilization l' against b + d and (b) the
// bcast -> delivered-at-all-of-Q latency against d.
//
// With `--export PATH` the sweep's shared metrics registry — including the
// stack-recorded to.brcv_latency.* histograms feeding the latency columns
// below — is written as a vsg-metrics-v1 JSON snapshot.

#include <cstdio>
#include <memory>
#include <set>

#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/world.hpp"
#include "obs/json_exporter.hpp"
#include "obs/stopwatch.hpp"

using namespace vsg;

namespace {

sim::Time bound_b(const membership::TokenRingConfig& cfg, int n) {
  return 9 * cfg.delta + std::max(cfg.pi + (n + 3) * cfg.delta, cfg.mu);
}

}  // namespace

int main(int argc, char** argv) {
  const auto export_path = obs::export_path_from_args(argc, argv);
  auto metrics = std::make_shared<obs::MetricsRegistry>();

  std::printf("E3: TO-property(b+d, d, Q) for the full stack (Theorem 7.1/7.2)\n");
  const membership::TokenRingConfig ring;
  const std::vector<int> widths{4, 12, 12, 12, 12, 12, 8};
  std::printf("\n%s\n",
              harness::fmt_row({"|Q|", "b+d", "TO l'", "d(impl)", "deliv p90", "deliv max",
                                "holds"},
                               widths)
                  .c_str());
  bool all_ok = true;
  for (int group = 2; group <= 7; ++group) {
    obs::ScopedWallTimer timer(
        metrics->histogram("bench.run_wall", obs::Unit::kWallMicros));
    const int n = group + 2;
    harness::WorldConfig cfg;
    cfg.n = n;
    cfg.backend = harness::Backend::kTokenRing;
    cfg.ring = ring;
    cfg.seed = 900 + group;
    cfg.metrics = metrics;
    harness::World world(cfg);

    std::set<ProcId> q;
    std::vector<ProcId> senders;
    for (ProcId p = 0; p < group; ++p) {
      q.insert(p);
      senders.push_back(p);
    }
    std::set<ProcId> rest;
    for (ProcId p = group; p < n; ++p) rest.insert(p);

    // Values submitted before AND after the partition stabilizes.
    world.bcast_at(sim::msec(100), 0, "pre-partition");
    world.partition_at(sim::sec(1), {q, rest});
    harness::steady_traffic(senders, 25, sim::sec(3), ring.pi).apply(world);
    const sim::Time end_traffic = sim::sec(3) + 25 * ring.pi;
    world.run_until(end_traffic + sim::sec(4));

    // Per the theorem the group must contain a quorum of n; majorities(n)
    // with group = ceil(n/2)+... our split keeps group = n-2 >= majority
    // whenever group >= 3; for group == 2 (n == 4) it is NOT a quorum, so
    // the conditional claim is vacuous — we still print the row for shape.
    const bool quorum = 2 * group > n;
    const sim::Time d = 3 * (ring.pi + group * ring.delta);
    const sim::Time b = bound_b(ring, group);
    const auto report = world.to_report(q, d, end_traffic);
    const auto lat =
        harness::to_delivery_latency(world.recorder().events(), q, sim::sec(3));

    if (report.required_lprime)
      metrics->gauge("bench.to_lprime.q" + std::to_string(group))
          .set(*report.required_lprime);
    metrics->gauge("bench.deliv_p90.q" + std::to_string(group)).set(lat.p90);

    const bool ok = !quorum || (report.holds_with(b + d) && world.check_to_safety().empty());
    all_ok = all_ok && ok;
    std::printf(
        "%s\n",
        harness::fmt_row(
            {std::to_string(group), harness::fmt_time(b + d),
             report.required_lprime ? harness::fmt_time(*report.required_lprime)
                                    : std::string(quorum ? "never" : "n/a (no quorum)"),
             harness::fmt_time(d), harness::fmt_time(lat.p90), harness::fmt_time(lat.max),
             ok ? "yes" : "NO"},
            widths)
            .c_str());
  }
  std::printf("\npaper claim (Thm 7.1): TO stabilizes within b+d and delivers within d\n"
              "for every Q containing a quorum -> %s\n",
              all_ok ? "REPRODUCED" : "NOT reproduced");

  if (export_path) {
    if (!obs::JsonExporter::write_file(*metrics, *export_path, "bench_to_latency")) {
      std::fprintf(stderr, "failed to write %s\n", export_path->c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", export_path->c_str());
  }
  return all_ok ? 0 : 1;
}
