// E5 — quorum-system ablation: VStoTO makes progress exactly when some
// network component's membership contains a quorum (a primary view exists).
// The choice of quorum system is the design knob the paper leaves open
// ("we can define Q to be the set of majorities"). We sample random
// partition patterns and report the fraction in which a primary component
// exists, for majority vs weighted (one heavyweight tie-breaker) vs an
// explicit two-out-of-{0,1,2} family, across n.

#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "core/quorum.hpp"
#include "harness/stats.hpp"
#include "obs/json_exporter.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

using namespace vsg;

namespace {

// Random partition of 0..n-1: each processor picks one of k buckets.
std::vector<std::set<ProcId>> random_partition(int n, int buckets, util::Rng& rng) {
  std::vector<std::set<ProcId>> comps(static_cast<std::size_t>(buckets));
  for (ProcId p = 0; p < n; ++p)
    comps[rng.below(static_cast<std::uint64_t>(buckets))].insert(p);
  return comps;
}

double availability(const core::QuorumSystem& q, int n, int buckets, int trials,
                    util::Rng& rng) {
  int primary = 0;
  for (int t = 0; t < trials; ++t) {
    const auto comps = random_partition(n, buckets, rng);
    for (const auto& c : comps)
      if (!c.empty() && q.contains_quorum(c)) {
        ++primary;
        break;
      }
  }
  return static_cast<double>(primary) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const auto export_path = obs::export_path_from_args(argc, argv);
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  // Gauges hold integers; availability fractions are exported as permille.
  auto permille = [](double f) { return static_cast<std::int64_t>(f * 1000.0 + 0.5); };

  std::printf("E5: fraction of random partitions admitting a primary view\n");
  const int trials = 20000;
  const std::vector<int> widths{4, 9, 12, 12, 14};
  for (int buckets : {2, 3}) {
    std::printf("\n-- random split into %d components, %d trials --\n", buckets, trials);
    std::printf("%s\n", harness::fmt_row({"n", "buckets", "majority", "weighted",
                                          "explicit-2of3"},
                                         widths)
                            .c_str());
    for (int n : {3, 4, 5, 6, 7, 8, 9}) {
      util::Rng rng(42 + n * 100 + buckets);
      const core::MajorityQuorums maj(n);
      // Heavyweight processor 0: weight n-1, everyone else weight 1.
      std::vector<int> w(static_cast<std::size_t>(n), 1);
      w[0] = n - 1;
      const core::WeightedQuorums weighted(w);
      // Explicit: any 2 of {0,1,2} (pairwise intersecting).
      const core::ExplicitQuorums explicit2({{0, 1}, {1, 2}, {0, 2}});

      const double av_maj = availability(maj, n, buckets, trials, rng);
      const double av_wgt = availability(weighted, n, buckets, trials, rng);
      const double av_exp = availability(explicit2, n, buckets, trials, rng);
      const std::string key = ".n" + std::to_string(n) + ".k" + std::to_string(buckets);
      metrics->gauge("bench.avail_permille.majority" + key).set(permille(av_maj));
      metrics->gauge("bench.avail_permille.weighted" + key).set(permille(av_wgt));
      metrics->gauge("bench.avail_permille.explicit2" + key).set(permille(av_exp));
      char a[16], b[16], c[16];
      std::snprintf(a, sizeof a, "%.3f", av_maj);
      std::snprintf(b, sizeof b, "%.3f", av_wgt);
      std::snprintf(c, sizeof c, "%.3f", av_exp);
      std::printf("%s\n", harness::fmt_row({std::to_string(n), std::to_string(buckets), a,
                                            b, c},
                                           widths)
                              .c_str());
    }
  }
  std::printf(
      "\nreading: majority availability falls as components multiply; a weighted\n"
      "tie-breaker or a small explicit family trades balanced availability for\n"
      "dependence on specific processors (the design discussion of Section 5).\n");

  if (export_path) {
    if (!obs::JsonExporter::write_file(*metrics, *export_path,
                                       "bench_quorum_availability")) {
      std::fprintf(stderr, "failed to write %s\n", export_path->c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot written to %s\n", export_path->c_str());
  }
  return 0;
}
