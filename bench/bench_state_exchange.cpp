// E4 — recovery cost (Section 5): when a partition heals, every member of
// the new view sends one summary; the merge time and the bytes on the wire
// grow with the backlog of unconfirmed values accumulated during the
// partition. We sweep the backlog B and the group size n and measure
// (a) heal -> all-backlog-delivered-everywhere time and (b) network bytes
// attributable to the recovery window.

#include <cstdio>
#include <memory>
#include <set>

#include "harness/stats.hpp"
#include "harness/world.hpp"
#include "obs/json_exporter.hpp"
#include "obs/stopwatch.hpp"

using namespace vsg;

namespace {

struct Result {
  sim::Time merge_time = -1;
  std::uint64_t bytes = 0;
  bool ok = false;
};

Result run_one(int n, int backlog, std::uint64_t seed,
               const std::shared_ptr<obs::MetricsRegistry>& metrics) {
  obs::ScopedWallTimer timer(
      metrics->histogram("bench.run_wall", obs::Unit::kWallMicros));
  harness::WorldConfig cfg;
  cfg.n = n;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = seed;
  cfg.metrics = metrics;  // all sweep runs accumulate into one registry
  harness::World world(cfg);

  // Split into majority/minority; submit backlog on BOTH sides.
  std::set<ProcId> maj, min;
  for (ProcId p = 0; p < n; ++p) (2 * (p + 1) <= n ? min : maj).insert(p);
  world.partition_at(sim::msec(100), {maj, min});
  for (int k = 0; k < backlog; ++k) {
    world.bcast_at(sim::msec(300) + k * sim::usec(200), *maj.begin(),
                   "m" + std::to_string(k));
    world.bcast_at(sim::msec(300) + k * sim::usec(200), *min.begin(),
                   "x" + std::to_string(k));
  }
  world.run_until(sim::sec(3));
  const std::uint64_t bytes_before = world.network()->stats().bytes_sent;
  const sim::Time heal_at = world.simulator().now();
  world.heal_at(heal_at);

  // Run until every processor delivered all 2*backlog values (or timeout).
  const std::size_t want = static_cast<std::size_t>(2 * backlog);
  Result result;
  const sim::Time deadline = heal_at + sim::sec(60);
  while (world.simulator().now() < deadline) {
    bool done = true;
    for (ProcId p = 0; p < n; ++p)
      if (world.stack().process(p).delivered().size() < want) done = false;
    if (done) {
      result.merge_time = world.simulator().now() - heal_at;
      break;
    }
    if (!world.simulator().step()) break;
  }
  result.bytes = world.network()->stats().bytes_sent - bytes_before;
  result.ok = result.merge_time >= 0 && world.check_to_safety().empty();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto export_path = obs::export_path_from_args(argc, argv);
  auto metrics = std::make_shared<obs::MetricsRegistry>();

  std::printf("E4: state-exchange recovery cost vs backlog (Section 5 recovery)\n");
  const std::vector<int> widths{4, 8, 14, 14, 8};
  bool all_ok = true;
  for (int n : {4, 6, 8}) {
    std::printf("\n-- n = %d (split %d|%d) --\n", n, n - n / 2, n / 2);
    std::printf("%s\n", harness::fmt_row({"n", "B", "merge time", "recovery KB", "ok"},
                                         widths)
                            .c_str());
    for (int backlog : {1, 10, 50, 100, 200}) {
      const auto r = run_one(n, backlog, 1700 + n * 10 + backlog, metrics);
      all_ok = all_ok && r.ok;
      const std::string key = ".n" + std::to_string(n) + ".b" + std::to_string(backlog);
      if (r.merge_time >= 0)
        metrics->gauge("bench.merge_time_us" + key).set(r.merge_time);
      metrics->gauge("bench.recovery_bytes" + key)
          .set(static_cast<std::int64_t>(r.bytes));
      char kb[32];
      std::snprintf(kb, sizeof kb, "%.1f", static_cast<double>(r.bytes) / 1024.0);
      std::printf("%s\n",
                  harness::fmt_row({std::to_string(n), std::to_string(backlog),
                                    r.merge_time < 0 ? "timeout"
                                                     : harness::fmt_time(r.merge_time),
                                    kb, r.ok ? "yes" : "NO"},
                                   widths)
                      .c_str());
    }
  }
  std::printf("\npaper claim: recovery = one summary per member; cost grows with the\n"
              "backlog, and all divergent history merges into one order -> %s\n",
              all_ok ? "REPRODUCED" : "NOT reproduced");

  if (export_path) {
    if (!obs::JsonExporter::write_file(*metrics, *export_path, "bench_state_exchange")) {
      std::fprintf(stderr, "failed to write %s\n", export_path->c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot written to %s\n", export_path->c_str());
  }
  return all_ok ? 0 : 1;
}
