// E6 — token-ring ordering throughput: the token is the serialization
// point, so confirmed-delivery throughput is governed by the token launch
// spacing pi and the ring size n (each lap batches everything buffered
// since the previous lap). We saturate every member with client traffic
// and measure confirmed deliveries per second at one processor, sweeping n
// and pi.
//
// With `--export PATH` the full sweep's metrics registry (per-cell
// registries merged in cell order) is written as a vsg-metrics-v1 JSON
// snapshot; see docs/OBSERVABILITY.md. `--jobs N` runs the sweep's
// independent Worlds on N threads (0 = hardware concurrency) — counters in
// the merged snapshot are identical to a sequential run, only the wall
// clock moves. `--wire 1|2|3` pins the frame layout
// (docs/WIRE.md; default v3) — protocol counters are bit-identical across
// v1/v2, only the encode-cache counters (ring.entries_rebuilds vs
// ring.entries_spliced) and byte counts move. v3 additionally switches the
// state exchange to digest/delta mode (two exchange messages per member
// per view change instead of one), so vs.gpsnd/gprcv move by design while
// the TO-level client counters stay identical at quiescence.
//
// `--churn` switches to the crash/rejoin workload behind the PR 6
// evidence: members drop out and return on a fixed schedule, forcing a
// state exchange per membership change. Run it twice — `--wire 2` and
// `--wire 3` — with the same seeds and compare ring.state_exchange_bytes
// and the to.* counters in the exported snapshots. Combined with
// `--shards K` the same churn cadence runs inside the sharded workload.
//
// `--timeline-out PATH` (single-World workloads: --shards K, or the last
// rate of a --rate sweep) additionally samples every registry on a
// virtual-time interval and writes the run's vsg-timeseries-v1 timeline;
// render it with tools/vsg_report (docs/OBSERVABILITY.md, "Timelines").
//
// `--rate R1[,R2,...]` switches to the open-loop latency-under-load
// workload (PR 10 evidence, docs/FLOWCONTROL.md): arrivals at a fixed
// offered rate against a deliberately capacity-limited ring, reporting
// end-to-end latency percentiles, shed/deferred counts and
// backlog_growth health events per rate. Compose with `--budget BYTES`
// (per-pass boarding budget, enables the urgency lanes), `--gate
// shed|defer` + `--backlog N` (sender-side admission gate), and
// `--churn` (crash/rejoin cadence inside the load window). Spans are on,
// so the exported snapshot carries the per-phase to.phase_latency.*
// histograms alongside to.brcv_latency.*.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "app/sharded_kv.hpp"
#include "exec/parallel.hpp"
#include "harness/stats.hpp"
#include "harness/world.hpp"
#include "obs/json_exporter.hpp"
#include "obs/stopwatch.hpp"
#include "util/keydist.hpp"
#include "util/rng.hpp"

using namespace vsg;

namespace {

double run_one(int n, sim::Time pi, std::uint64_t seed, membership::WireFormat wire,
               const std::shared_ptr<obs::MetricsRegistry>& metrics) {
  obs::ScopedWallTimer timer(
      metrics->histogram("bench.run_wall", obs::Unit::kWallMicros));

  harness::WorldConfig cfg;
  cfg.n = n;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.ring.pi = pi;
  cfg.ring.wire = wire;
  cfg.seed = seed;
  cfg.metrics = metrics;  // all sweep runs accumulate into one registry
  harness::World world(cfg);

  // Saturation: every processor submits a value every pi/4.
  const sim::Time gap = pi / 4;
  const sim::Time start = sim::msec(500);
  const sim::Time end = start + sim::sec(8);
  for (sim::Time t = start; t < end; t += gap)
    for (ProcId p = 0; p < n; ++p)
      world.bcast_at(t, p, "v");
  world.run_until(end + sim::sec(4));

  // Measure confirmed deliveries at processor 0 in the steady window.
  const auto delivered = harness::deliveries_at(world.recorder().events(), 0,
                                                start + sim::sec(1), end);
  const double secs = static_cast<double>(end - (start + sim::sec(1))) / 1e6;
  return static_cast<double>(delivered) / secs;
}

// Crash/rejoin workload: every 1.5 simulated seconds one member (round-
// robin over 1..n-1; processor 0 stays up as the delivery observer) goes
// bad for a second and returns. Each departure and each return forms a new
// view, and every view change triggers a full state exchange — the traffic
// the v3 digest/delta protocol compresses. Crashed processors keep their
// in-memory state across the outage (kBad silences, it does not reset), so
// on rejoin a digest exchange discovers that peers lack almost nothing.
std::uint64_t run_churn(int n, sim::Time pi, std::uint64_t seed,
                        membership::WireFormat wire,
                        const std::shared_ptr<obs::MetricsRegistry>& metrics) {
  obs::ScopedWallTimer timer(
      metrics->histogram("bench.run_wall", obs::Unit::kWallMicros));

  harness::WorldConfig cfg;
  cfg.n = n;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.ring.pi = pi;
  cfg.ring.wire = wire;
  cfg.seed = seed;
  cfg.metrics = metrics;
  harness::World world(cfg);

  const sim::Time start = sim::msec(500);
  const sim::Time end = start + sim::sec(12);
  // Moderate load: one value per member per token lap keeps the ring busy
  // (and the summaries growing) without swamping the exchange traffic.
  for (sim::Time t = start; t < end; t += pi)
    for (ProcId p = 0; p < n; ++p)
      world.bcast_at(t, p, "v");

  int cycle = 0;
  for (sim::Time t = start + sim::sec(1); t + sim::sec(1) < end; t += sim::msec(1500)) {
    const ProcId victim = 1 + static_cast<ProcId>(cycle++ % (n - 1));
    world.proc_status_at(t, victim, sim::Status::kBad);
    world.proc_status_at(t + sim::sec(1), victim, sim::Status::kGood);
  }
  // Run well past the last submission so every world reaches quiescence:
  // at that point the TO-level client counters are workload-determined and
  // must match across wire versions.
  world.run_until(end + sim::sec(6));
  return harness::deliveries_at(world.recorder().events(), 0, start, end + sim::sec(6));
}

// Sharded scaling workload (PR 8 evidence): one substrate, K independent
// token rings, keys spread over the rings by the stable ShardRouter hash.
// The single ring is deliberately capacity-limited (max_entries_per_pass
// bounds how much the token batches per visit), and the offered Zipf write
// load is sized well past that capacity — so K=1 saturates at the ring's
// ordering rate while K rings split the same load into K independent
// serialization points. The scaling claim (docs/SHARDING.md) is aggregate
// applied-writes in the steady window growing with K.
std::uint64_t run_sharded(int shards, double zipf_s, bool churn, std::uint64_t seed,
                          const std::string& timeline_out,
                          const std::shared_ptr<obs::MetricsRegistry>& metrics) {
  obs::ScopedWallTimer timer(
      metrics->histogram("bench.run_wall", obs::Unit::kWallMicros));

  const int n = 4;
  harness::WorldConfig cfg;
  cfg.n = n;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.shards = shards;
  cfg.ring.pi = sim::msec(40);
  cfg.ring.max_entries_per_pass = 2;  // the per-ring capacity bound
  cfg.seed = seed;
  // Virtual-time telemetry rides along only when asked for; the sampler
  // reads registries without touching the protocol, so the delivered-ops
  // numbers are identical either way (docs/OBSERVABILITY.md, "Timelines").
  cfg.sampler.enabled = !timeline_out.empty();
  harness::World world(cfg);

  std::vector<to::Service*> services;
  for (int k = 0; k < shards; ++k) services.push_back(&world.stack(k));
  app::ShardedKV kv(services);

  // Open-system offered load: every processor submits a Zipf-keyed write
  // every 4ms — far above one capacity-limited ring's ordering rate.
  const util::KeyDist dist(512, zipf_s);
  util::Rng keys_rng(seed * 7919 + 17);
  const sim::Time gap = sim::msec(4);
  const sim::Time start = sim::msec(500);
  const sim::Time end = start + sim::sec(8);
  std::uint64_t offered = 0;
  for (sim::Time t = start; t < end; t += gap) {
    for (ProcId p = 0; p < n; ++p) {
      const std::string key = util::KeyDist::key_name(dist.next(keys_rng));
      world.simulator().at(t, [&kv, p, key] { kv.write(p, key, "v"); });
      ++offered;
    }
  }

  // --churn composes with --shards: the same crash/rejoin cadence as the
  // plain churn workload, hitting every ring at once (one substrate). Off
  // by default so the established K-scaling numbers stay untouched.
  if (churn) {
    int cycle = 0;
    for (sim::Time t = start + sim::sec(1); t + sim::sec(1) < end; t += sim::msec(1500)) {
      const ProcId victim = 1 + static_cast<ProcId>(cycle++ % (n - 1));
      world.proc_status_at(t, victim, sim::Status::kBad);
      world.proc_status_at(t + sim::sec(1), victim, sim::Status::kGood);
    }
  }

  // Aggregate applied writes at replica 0 across all shards, inside the
  // steady window.
  const sim::Time window_start = start + sim::sec(1);
  std::uint64_t at_start = 0, at_end = 0;
  world.simulator().at(window_start, [&] { at_start = kv.total_applied(0); });
  world.simulator().at(end, [&] { at_end = kv.total_applied(0); });
  world.run_until(end + sim::sec(2));

  const std::uint64_t delivered = at_end - at_start;
  const double secs = static_cast<double>(end - window_start) / 1e6;
  world.collect_shard_metrics();
  if (!timeline_out.empty()) {
    if (world.write_timeline(timeline_out))
      std::printf("timeline written to %s\n", timeline_out.c_str());
    else
      std::fprintf(stderr, "cannot write %s\n", timeline_out.c_str());
  }
  metrics->merge_from(world.metrics());
  const std::string tag = "bench.sharded.k" + std::to_string(shards);
  metrics->gauge(tag + ".delivered_ops").set(static_cast<std::int64_t>(delivered));
  metrics->gauge(tag + ".deliv_per_sec")
      .set(static_cast<std::int64_t>(static_cast<double>(delivered) / secs));
  metrics->gauge(tag + ".offered").set(static_cast<std::int64_t>(offered));
  return delivered;
}

// Open-loop latency-under-load workload (PR 10 evidence): a fixed offered
// rate against one deliberately capacity-limited ring (n=4, pi=40ms,
// max_entries_per_pass=2 — about 200 boarded payloads/sec). Below capacity
// latency sits near the token spacing; past capacity an unprotected ring
// queues without bound (the backlog_growth watchdog fires), while a
// boarding budget plus the sender-side admission gate keeps the queue — and
// therefore the latency of everything that is admitted — bounded
// (docs/FLOWCONTROL.md).
struct RateCell {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t shed = 0;
  std::uint64_t deferred = 0;
  std::size_t growth_events = 0;
  std::int64_t p50 = 0, p95 = 0, p99 = 0;  // to.brcv_latency.all, usec
};

RateCell run_rate(int rate, std::uint64_t budget, int gate /*0 off, 1 shed, 2 defer*/,
                  int max_backlog, bool churn, std::uint64_t seed,
                  const std::string& timeline_out,
                  const std::shared_ptr<obs::MetricsRegistry>& metrics) {
  obs::ScopedWallTimer timer(
      metrics->histogram("bench.run_wall", obs::Unit::kWallMicros));

  const int n = 4;
  harness::WorldConfig cfg;
  cfg.n = n;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.ring.pi = sim::msec(40);
  cfg.ring.max_entries_per_pass = 2;  // the per-ring capacity bound
  if (budget > 0) {
    // Budget and lanes travel together: under a byte bound the state
    // exchange must preempt queued bulk (docs/FLOWCONTROL.md).
    cfg.ring.board_budget_bytes = static_cast<std::size_t>(budget);
    cfg.ring.lanes = true;
  }
  if (gate != 0) cfg.ring.admission_max_backlog = static_cast<std::size_t>(max_backlog);
  cfg.seed = seed;
  cfg.sampler.enabled = true;  // the backlog_growth watchdog is the verdict
  cfg.trace.enabled = true;    // per-phase to.phase_latency.* spans
  harness::World world(cfg);

  RateCell cell;
  const sim::Time gap = std::max<sim::Time>(1, sim::Time{1'000'000} / rate);
  const sim::Time start = sim::msec(500);
  const sim::Time end = start + sim::sec(8);
  int rr = 0;
  for (sim::Time t = start; t < end; t += gap) {
    const ProcId p = static_cast<ProcId>(rr++ % n);
    ++cell.offered;
    if (gate == 1) {
      // Shed policy: an open-loop sender would rather lose the sample than
      // queue it behind a saturated ring.
      world.simulator().at(t, [&world, p] { world.stack().trysend(p, "v"); });
    } else {
      world.bcast_at(t, p, "v");  // defer policy (or no gate): never dropped
    }
  }
  if (churn) {
    int cycle = 0;
    for (sim::Time t = start + sim::sec(1); t + sim::sec(1) < end; t += sim::msec(1500)) {
      const ProcId victim = 1 + static_cast<ProcId>(cycle++ % (n - 1));
      world.proc_status_at(t, victim, sim::Status::kBad);
      world.proc_status_at(t + sim::sec(1), victim, sim::Status::kGood);
    }
  }
  world.run_until(end + sim::sec(4));

  cell.delivered =
      harness::deliveries_at(world.recorder().events(), 0, start, end + sim::sec(4));
  if (gate != 0) {
    cell.shed = world.metrics().counter("ring.sends_shed").value();
    cell.deferred = world.metrics().counter("ring.sends_deferred").value();
  }
  const auto& lat = world.metrics().histogram("to.brcv_latency.all");
  cell.p50 = lat.quantile_upper(0.50);
  cell.p95 = lat.quantile_upper(0.95);
  cell.p99 = lat.quantile_upper(0.99);
  for (const auto& e : world.sampler()->health().events())
    if (e.rule == "backlog_growth") ++cell.growth_events;
  if (!timeline_out.empty()) {
    if (world.write_timeline(timeline_out))
      std::printf("timeline written to %s\n", timeline_out.c_str());
    else
      std::fprintf(stderr, "cannot write %s\n", timeline_out.c_str());
  }

  const std::string tag = "bench.rate.r" + std::to_string(rate);
  metrics->merge_from(world.metrics(), tag + ".");
  metrics->gauge(tag + ".offered").set(static_cast<std::int64_t>(cell.offered));
  metrics->gauge(tag + ".delivered").set(static_cast<std::int64_t>(cell.delivered));
  metrics->gauge(tag + ".shed").set(static_cast<std::int64_t>(cell.shed));
  metrics->gauge(tag + ".deferred").set(static_cast<std::int64_t>(cell.deferred));
  metrics->gauge(tag + ".backlog_growth_events")
      .set(static_cast<std::int64_t>(cell.growth_events));
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto export_path = obs::export_path_from_args(argc, argv);
  auto wire = membership::kDefaultWireFormat;
  bool churn = false;
  int jobs = 1;
  int shards = 0;       // 0: classic sweep; K >= 1: sharded scaling workload
  double zipf_s = 1.1;  // key-popularity skew of the sharded workload
  std::string timeline_out;  // vsg-timeseries-v1 dump of the sharded World
  std::vector<int> rates;    // open-loop offered rates (values/sec), in order
  std::uint64_t budget = 0;  // boarding budget, bytes/pass (0: unbounded)
  int gate = 0;              // 0: off, 1: shed, 2: defer
  int backlog = 64;          // admission_max_backlog when gated
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--churn") == 0) churn = true;
    if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      std::string list = argv[i + 1];
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const int r = std::atoi(list.substr(pos, comma - pos).c_str());
        if (r < 1) {
          std::fprintf(stderr, "--rate takes positive values/sec, comma-separated\n");
          return 2;
        }
        rates.push_back(r);
        pos = comma + 1;
      }
    }
    if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      const long long b = std::atoll(argv[i + 1]);
      if (b < 1) {
        std::fprintf(stderr, "--budget takes a positive byte count\n");
        return 2;
      }
      budget = static_cast<std::uint64_t>(b);
    }
    if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      if (std::strcmp(argv[i + 1], "shed") == 0)
        gate = 1;
      else if (std::strcmp(argv[i + 1], "defer") == 0)
        gate = 2;
      else if (std::strcmp(argv[i + 1], "off") == 0)
        gate = 0;
      else {
        std::fprintf(stderr, "--gate takes shed, defer or off (docs/FLOWCONTROL.md)\n");
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--backlog") == 0 && i + 1 < argc) {
      backlog = std::atoi(argv[i + 1]);
      if (backlog < 1) {
        std::fprintf(stderr, "--backlog takes a positive entry count\n");
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--timeline-out") == 0 && i + 1 < argc)
      timeline_out = argv[i + 1];
    if (std::strncmp(argv[i], "--timeline-out=", 15) == 0) timeline_out = argv[i] + 15;
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[i + 1]);
      if (shards < 1 || shards > harness::kMaxShards) {
        std::fprintf(stderr, "--shards takes 1..%d\n", harness::kMaxShards);
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--zipf") == 0 && i + 1 < argc) {
      zipf_s = std::atof(argv[i + 1]);
      if (zipf_s < 0) {
        std::fprintf(stderr, "--zipf takes a non-negative skew (0 = uniform)\n");
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[i + 1]);
      if (jobs < 0) {
        std::fprintf(stderr, "--jobs takes a non-negative count (0 = hardware)\n");
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--wire") != 0 || i + 1 >= argc) continue;
    const int v = std::atoi(argv[i + 1]);
    if (!wire::known_version(static_cast<std::uint8_t>(v))) {
      std::fprintf(stderr, "--wire takes 1, 2 or 3 (docs/WIRE.md)\n");
      return 2;
    }
    wire = static_cast<membership::WireFormat>(v);
  }
  if (!timeline_out.empty() && shards < 1 && rates.empty()) {
    std::fprintf(stderr, "--timeline-out needs a single-World workload; add --shards K "
                         "or --rate R (docs/OBSERVABILITY.md)\n");
    return 2;
  }
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  const std::int64_t sweep_start = obs::wall_now_us();

  if (!rates.empty()) {
    const char* gate_name = gate == 0 ? "off" : (gate == 1 ? "shed" : "defer");
    std::printf("E10: latency vs offered load — capacity-limited ring (n=4, pi=40ms, "
                "2 entries/pass)\n     budget=%llu bytes/pass%s, gate=%s",
                static_cast<unsigned long long>(budget),
                budget > 0 ? " (+lanes)" : " (unbounded)", gate_name);
    if (gate != 0) std::printf(" (backlog limit %d)", backlog);
    std::printf("%s\n\n", churn ? ", crash/rejoin churn" : "");
    const std::vector<int> widths{8, 9, 11, 7, 10, 9, 9, 9, 8};
    std::printf("%s\n",
                harness::fmt_row({"rate/s", "offered", "delivered", "shed", "deferred",
                                  "p50us", "p95us", "p99us", "growth"},
                                 widths)
                    .c_str());
    std::uint64_t growth_total = 0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      // The timeline (if asked for) captures the last — typically hottest —
      // rate of the sweep.
      const RateCell cell = run_rate(rates[i], budget, gate, backlog, churn,
                                     4500 + static_cast<std::uint64_t>(i),
                                     i + 1 == rates.size() ? timeline_out : "", metrics);
      growth_total += cell.growth_events;
      std::printf("%s\n",
                  harness::fmt_row(
                      {std::to_string(rates[i]), std::to_string(cell.offered),
                       std::to_string(cell.delivered), std::to_string(cell.shed),
                       std::to_string(cell.deferred), std::to_string(cell.p50),
                       std::to_string(cell.p95), std::to_string(cell.p99),
                       std::to_string(cell.growth_events)},
                      widths)
                      .c_str());
    }
    // The greppable verdict line check.sh asserts on: a budgeted, gated run
    // over capacity must keep the queue bounded (docs/FLOWCONTROL.md).
    std::printf("\nbacklog_growth events: %llu\n",
                static_cast<unsigned long long>(growth_total));
    std::printf("\nreading: below capacity (~200/s) latency rides the token spacing; "
                "past it an\nunprotected ring queues without bound (growth events), "
                "while the boarding budget\nplus admission gate sheds or defers at the "
                "sender and keeps admitted latency flat.\n");
  } else if (shards >= 1) {
    std::printf("E8: sharded aggregate throughput — %d ring%s over one substrate "
                "(zipf s=%.2f, n=4, capacity-limited rings%s)\n\n",
                shards, shards == 1 ? "" : "s", zipf_s,
                churn ? ", crash/rejoin churn" : "");
    const std::uint64_t delivered =
        run_sharded(shards, zipf_s, churn, 4400, timeline_out, metrics);
    const auto per_sec = metrics->gauge("bench.sharded.k" + std::to_string(shards) +
                                        ".deliv_per_sec")
                             .value();
    const auto offered = metrics->gauge("bench.sharded.k" + std::to_string(shards) +
                                        ".offered")
                             .value();
    std::printf("shards=%d  delivered_ops=%llu (steady window)  deliv/sec=%lld  "
                "offered=%lld writes\n",
                shards, static_cast<unsigned long long>(delivered),
                static_cast<long long>(per_sec), static_cast<long long>(offered));
    std::printf("\nreading: each ring's token is its own serialization point; the "
                "offered load\nexceeds one capacity-limited ring, so aggregate applied "
                "writes grow with K\nuntil the load splits below per-ring capacity "
                "(docs/SHARDING.md).\n");
  } else if (churn) {
    std::printf("E6-churn: crash/rejoin state-exchange traffic (wire %s, jobs %d)\n\n",
                membership::to_string(wire),
                exec::effective_jobs(jobs, 3));
    const std::vector<int> widths{6, 4, 14};
    std::printf("%s\n", harness::fmt_row({"seed", "n", "deliveries"}, widths).c_str());
    // Parallel axis: each seed runs its own World with its own registry;
    // the per-cell registries merge into the shared one in seed order, so
    // the exported counters are identical to a sequential shared-registry
    // sweep (merge is associative/commutative over counter adds).
    std::vector<std::shared_ptr<obs::MetricsRegistry>> cell_metrics(3);
    std::vector<std::uint64_t> cell_delivered(3);
    exec::run_parallel(jobs, cell_metrics.size(), [&](std::size_t i) {
      cell_metrics[i] = std::make_shared<obs::MetricsRegistry>();
      cell_delivered[i] = run_churn(5, sim::msec(40), 3100 + i, wire, cell_metrics[i]);
    });
    for (std::uint64_t i = 0; i < 3; ++i) {
      const std::uint64_t seed = 3100 + i;
      const std::uint64_t delivered = cell_delivered[i];
      metrics->merge_from(*cell_metrics[i]);
      metrics->gauge("bench.churn_deliveries.seed" + std::to_string(seed))
          .set(static_cast<std::int64_t>(delivered));
      std::printf("%s\n",
                  harness::fmt_row({std::to_string(seed), "5", std::to_string(delivered)},
                                   widths)
                      .c_str());
    }
    std::printf("\nexchange bytes (all runs):\n");
    std::printf("  ring.state_exchange_bytes          %llu\n",
                static_cast<unsigned long long>(
                    metrics->counter("ring.state_exchange_bytes").value()));
    std::printf("  ring.state_exchange_bytes.summary  %llu\n",
                static_cast<unsigned long long>(
                    metrics->counter("ring.state_exchange_bytes.summary").value()));
    std::printf("  ring.state_exchange_bytes.digest   %llu\n",
                static_cast<unsigned long long>(
                    metrics->counter("ring.state_exchange_bytes.digest").value()));
    std::printf("  ring.state_exchange_bytes.delta    %llu\n",
                static_cast<unsigned long long>(
                    metrics->counter("ring.state_exchange_bytes.delta").value()));
    std::printf("  to.values_sent                     %llu\n",
                static_cast<unsigned long long>(
                    metrics->counter("to.values_sent").value()));
    std::printf("  to.labels_assigned                 %llu\n",
                static_cast<unsigned long long>(
                    metrics->counter("to.labels_assigned").value()));
  } else {
    std::printf(
        "E6: confirmed-delivery throughput vs ring size and token spacing (wire %s, "
        "jobs %d)\n\n",
        membership::to_string(wire), exec::effective_jobs(jobs, 15));
    const std::vector<int> widths{4, 10, 14, 16};
    std::printf("%s\n",
                harness::fmt_row({"n", "pi", "deliv/sec", "offered/sec"}, widths).c_str());
    struct Cell {
      int n;
      sim::Time pi;
    };
    std::vector<Cell> cells;
    for (int n : {2, 3, 4, 6, 8})
      for (sim::Time pi : {sim::msec(20), sim::msec(40), sim::msec(80)})
        cells.push_back({n, pi});
    // Same pattern as the churn sweep: independent Worlds in parallel,
    // per-cell registries, deterministic cell-order merge afterwards.
    std::vector<std::shared_ptr<obs::MetricsRegistry>> cell_metrics(cells.size());
    std::vector<double> cell_rate(cells.size());
    exec::run_parallel(jobs, cells.size(), [&](std::size_t i) {
      cell_metrics[i] = std::make_shared<obs::MetricsRegistry>();
      cell_rate[i] =
          run_one(cells[i].n, cells[i].pi, 2200 + cells[i].n, wire, cell_metrics[i]);
    });
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const int n = cells[i].n;
      const sim::Time pi = cells[i].pi;
      const double rate = cell_rate[i];
      metrics->merge_from(*cell_metrics[i]);
      const double offered = static_cast<double>(n) / (static_cast<double>(pi / 4) / 1e6);
      metrics
          ->gauge("bench.deliv_per_sec.n" + std::to_string(n) + ".pi_ms" +
                  std::to_string(pi / 1000))
          .set(static_cast<std::int64_t>(rate));
      char r[24], o[24];
      std::snprintf(r, sizeof r, "%.0f", rate);
      std::snprintf(o, sizeof o, "%.0f", offered);
      std::printf("%s\n", harness::fmt_row({std::to_string(n), harness::fmt_time(pi), r, o},
                                           widths)
                              .c_str());
    }
    std::printf(
        "\nreading: the token batches, so throughput tracks the offered load (all\n"
        "submitted values are confirmed) while latency is governed by pi (see E2);\n"
        "the serialization point does not collapse as n grows.\n");
  }

  // Wall-clock evidence for the parallel axis: total sweep time and the
  // job count land in the exported snapshot next to the per-run
  // bench.run_wall histogram.
  metrics->gauge("bench.sweep_wall_us").set(obs::wall_now_us() - sweep_start);
  metrics->gauge("bench.jobs")
      .set(!rates.empty() || shards >= 1 ? 1 : exec::effective_jobs(jobs, churn ? 3 : 15));

  if (export_path) {
    if (!obs::JsonExporter::write_file(*metrics, *export_path, "bench_throughput")) {
      std::fprintf(stderr, "failed to write %s\n", export_path->c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot written to %s\n", export_path->c_str());
  }
  return 0;
}
