// Ablation — token trimming (DESIGN.md design choice): the token carries
// the per-view order, so without trimming safe entries it grows with the
// view's entire history and every lap re-ships it; with trimming its size
// is bounded by the in-flight window. Same workload, trim on vs off.

#include <cstdio>
#include <memory>

#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/world.hpp"
#include "obs/json_exporter.hpp"
#include "obs/stopwatch.hpp"

using namespace vsg;

namespace {

struct Result {
  std::uint64_t max_entries;
  double mean_token_kb;
  std::uint64_t total_mb;
};

Result run_one(bool trim, int messages, std::uint64_t seed,
               const std::shared_ptr<obs::MetricsRegistry>& metrics) {
  obs::ScopedWallTimer timer(
      metrics->histogram("bench.run_wall", obs::Unit::kWallMicros));
  harness::WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.ring.trim_token = trim;
  cfg.seed = seed;
  cfg.metrics = metrics;  // all sweep runs accumulate into one registry
  harness::World world(cfg);

  harness::steady_traffic({0, 1, 2, 3}, messages, sim::msec(100), sim::msec(10))
      .apply(world);
  world.run_until(sim::msec(100) + messages * sim::msec(10) + sim::sec(3));

  const auto stats = world.token_ring()->total_stats();
  Result r;
  r.max_entries = stats.max_token_entries;
  const std::uint64_t forwards =
      stats.tokens_processed;  // ~one forward per processing step
  r.mean_token_kb =
      forwards == 0 ? 0.0
                    : static_cast<double>(stats.token_bytes_sent) / 1024.0 / forwards;
  r.total_mb = stats.token_bytes_sent / (1024 * 1024);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto export_path = obs::export_path_from_args(argc, argv);
  auto metrics = std::make_shared<obs::MetricsRegistry>();

  std::printf("Ablation: token trimming (safe-prefix garbage collection)\n\n");
  const std::vector<int> widths{10, 8, 14, 16, 12};
  std::printf("%s\n", harness::fmt_row({"trim", "msgs", "max entries", "mean token KB",
                                        "total MB"},
                                       widths)
                          .c_str());
  for (int messages : {50, 200, 800}) {
    for (bool trim : {true, false}) {
      const auto r = run_one(trim, messages, 4242, metrics);
      const std::string key =
          std::string(trim ? ".trim" : ".notrim") + ".m" + std::to_string(messages);
      metrics->gauge("bench.max_token_entries" + key)
          .set(static_cast<std::int64_t>(r.max_entries));
      metrics->gauge("bench.token_total_mb" + key)
          .set(static_cast<std::int64_t>(r.total_mb));
      char mean[24];
      std::snprintf(mean, sizeof mean, "%.2f", r.mean_token_kb);
      std::printf("%s\n",
                  harness::fmt_row({trim ? "on" : "off", std::to_string(messages * 4),
                                    std::to_string(r.max_entries), mean,
                                    std::to_string(r.total_mb)},
                                   widths)
                      .c_str());
    }
  }
  std::printf("\nreading: with trimming the token stays bounded by the in-flight window\n"
              "regardless of history length; without it, bytes-per-lap grow linearly\n"
              "with everything the view ever ordered.\n");

  if (export_path) {
    if (!obs::JsonExporter::write_file(*metrics, *export_path, "bench_token_trim")) {
      std::fprintf(stderr, "failed to write %s\n", export_path->c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot written to %s\n", export_path->c_str());
  }
  return 0;
}
