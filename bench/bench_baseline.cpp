// Baseline comparison — the paper's motivation quantified: a fixed-
// sequencer TO service (the non-partitionable Isis-era design) vs the
// VStoTO stack, on (a) stable-network delivery latency and (b)
// availability through a partition-and-heal episode.
//
// Expected shape: the centralized sequencer is *faster* when nothing
// fails (one hop to the sequencer + one broadcast vs waiting for the
// token), but during a partition only the sequencer's component makes
// progress — and nothing submitted by the other side is ever delivered —
// while VStoTO keeps every quorum component live and reconciles
// everything on heal.

#include <cstdio>
#include <memory>
#include <set>

#include "harness/stats.hpp"
#include "harness/world.hpp"
#include "obs/json_exporter.hpp"
#include "obs/stopwatch.hpp"
#include "to/sequencer_to.hpp"

using namespace vsg;

namespace {

struct StableResult {
  harness::LatencySummary latency;
};

StableResult run_stable_sequencer(int n, std::uint64_t seed) {
  sim::Simulator simulator;
  sim::FailureTable failures(n);
  trace::Recorder recorder(simulator);
  net::Network network(simulator, failures, net::LinkModel{}, util::Rng(seed));
  to::SequencerTO service(simulator, network, recorder, to::SequencerConfig{});
  for (int k = 0; k < 30; ++k)
    simulator.at(sim::msec(20 * k + 5), [&service, k, n] {
      service.bcast(static_cast<ProcId>(k % n), "v");
    });
  simulator.run_until(sim::sec(3));
  std::set<ProcId> q;
  for (ProcId p = 0; p < n; ++p) q.insert(p);
  return {harness::to_delivery_latency(recorder.events(), q, 0)};
}

StableResult run_stable_vstoto(int n, std::uint64_t seed,
                               const std::shared_ptr<obs::MetricsRegistry>& metrics) {
  obs::ScopedWallTimer timer(
      metrics->histogram("bench.run_wall", obs::Unit::kWallMicros));
  harness::WorldConfig cfg;
  cfg.n = n;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = seed;
  cfg.metrics = metrics;  // all sweep runs accumulate into one registry
  harness::World world(cfg);
  for (int k = 0; k < 30; ++k)
    world.bcast_at(sim::msec(20 * k + 5), static_cast<ProcId>(k % n), "v");
  world.run_until(sim::sec(5));
  std::set<ProcId> q;
  for (ProcId p = 0; p < n; ++p) q.insert(p);
  return {harness::to_delivery_latency(world.recorder().events(), q, 0)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto export_path = obs::export_path_from_args(argc, argv);
  auto metrics = std::make_shared<obs::MetricsRegistry>();

  std::printf("Baseline: fixed-sequencer TO (non-partitionable) vs VStoTO\n");

  std::printf("\n-- stable network, delivery latency to all (n sweep) --\n");
  const std::vector<int> widths{4, 12, 12, 12, 12};
  std::printf("%s\n", harness::fmt_row({"n", "seq p50", "seq max", "vsg p50", "vsg max"},
                                       widths)
                          .c_str());
  for (int n : {3, 5, 7}) {
    const auto seq = run_stable_sequencer(n, 500 + n);
    const auto vsg_result = run_stable_vstoto(n, 500 + n, metrics);
    metrics->gauge("bench.seq_p50_us.n" + std::to_string(n)).set(seq.latency.p50);
    metrics->gauge("bench.vsg_p50_us.n" + std::to_string(n)).set(vsg_result.latency.p50);
    std::printf("%s\n", harness::fmt_row({std::to_string(n),
                                          harness::fmt_time(seq.latency.p50),
                                          harness::fmt_time(seq.latency.max),
                                          harness::fmt_time(vsg_result.latency.p50),
                                          harness::fmt_time(vsg_result.latency.max)},
                                         widths)
                            .c_str());
  }

  std::printf("\n-- partition episode: {0,1} | {2,3,4}, sequencer = 0, 10 values per side --\n");
  // Sequencer run.
  {
    const int n = 5;
    sim::Simulator simulator;
    sim::FailureTable failures(n);
    trace::Recorder recorder(simulator);
    net::Network network(simulator, failures, net::LinkModel{}, util::Rng(1));
    to::SequencerTO service(simulator, network, recorder, to::SequencerConfig{});
    simulator.at(sim::msec(100), [&] { failures.partition({{0, 1}, {2, 3, 4}}, simulator.now()); });
    for (int k = 0; k < 10; ++k) {
      simulator.at(sim::sec(1) + k * sim::msec(20), [&service, k] {
        service.bcast(1, "a" + std::to_string(k));  // sequencer side
      });
      simulator.at(sim::sec(1) + k * sim::msec(20), [&service, k] {
        service.bcast(3, "b" + std::to_string(k));  // majority side, no sequencer
      });
    }
    simulator.run_until(sim::sec(4));
    std::printf("  sequencer: side-with-seq delivered %zu/10, MAJORITY side delivered %zu/10\n",
                service.delivered(1).size(), service.delivered(3).size());
  }
  // VStoTO run.
  {
    harness::WorldConfig cfg;
    cfg.n = 5;
    cfg.backend = harness::Backend::kTokenRing;
    cfg.seed = 1;
    cfg.metrics = metrics;
    harness::World world(cfg);
    world.partition_at(sim::msec(100), {{0, 1}, {2, 3, 4}});
    for (int k = 0; k < 10; ++k) {
      world.bcast_at(sim::sec(1) + k * sim::msec(20), 1, "a" + std::to_string(k));
      world.bcast_at(sim::sec(1) + k * sim::msec(20), 3, "b" + std::to_string(k));
    }
    world.run_until(sim::sec(4));
    std::printf("  vstoto   : minority side delivered %zu/10, majority side delivered %zu/10\n",
                world.stack().process(1).delivered().size(),
                world.stack().process(3).delivered().size());
    world.heal_at(sim::sec(4));
    world.run_until(sim::sec(12));
    std::printf("  vstoto after heal: everyone delivered %zu/20 (reconciled)\n",
                world.stack().process(0).delivered().size());
    metrics->gauge("bench.vsg_reconciled_of_20")
        .set(static_cast<std::int64_t>(world.stack().process(0).delivered().size()));
  }

  std::printf(
      "\nreading: the centralized baseline wins on stable-network latency but the\n"
      "majority component is dead without the sequencer; the quorum-based stack\n"
      "keeps the majority live and loses nothing — the paper's raison d'etre.\n");

  if (export_path) {
    if (!obs::JsonExporter::write_file(*metrics, *export_path, "bench_baseline")) {
      std::fprintf(stderr, "failed to write %s\n", export_path->c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot written to %s\n", export_path->c_str());
  }
  return 0;
}
