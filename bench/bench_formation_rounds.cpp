// Ablation — footnote 7: "A different implementation could use the
// one-round protocol of [19]. However, this would stabilize less quickly."
// Same partition/heal scenario under the 3-round (call/accept/announce)
// and 1-round (announce-from-estimate) formation protocols; compare the
// measured stabilization l' of the merged group and the view churn.

#include <cstdio>
#include <memory>
#include <set>

#include "harness/stats.hpp"
#include "harness/world.hpp"
#include "obs/json_exporter.hpp"
#include "obs/stopwatch.hpp"

using namespace vsg;

namespace {

struct Result {
  sim::Time merge_lprime = -1;
  std::uint64_t views = 0;
  std::uint64_t proposals = 0;
  bool safe = false;
};

Result run_one(membership::FormationMode mode, int n, std::uint64_t seed,
               const std::shared_ptr<obs::MetricsRegistry>& metrics) {
  obs::ScopedWallTimer timer(
      metrics->histogram("bench.run_wall", obs::Unit::kWallMicros));
  harness::WorldConfig cfg;
  cfg.n = n;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.ring.formation = mode;
  cfg.seed = seed;
  cfg.metrics = metrics;  // all sweep runs accumulate into one registry
  harness::World world(cfg);

  std::set<ProcId> left, right, all;
  for (ProcId p = 0; p < n; ++p) {
    (p < n / 2 ? left : right).insert(p);
    all.insert(p);
  }
  world.partition_at(sim::sec(1), {left, right});
  world.run_until(sim::sec(4));
  const sim::Time heal_at = world.simulator().now();
  world.heal_at(heal_at);
  world.run_until(heal_at + sim::sec(6));

  Result r;
  const auto report = world.vs_report(all, 3 * (cfg.ring.pi + n * cfg.ring.delta));
  if (report.required_lprime.has_value()) r.merge_lprime = *report.required_lprime;
  const auto stats = world.token_ring()->total_stats();
  r.views = stats.views_installed;
  r.proposals = stats.proposals;
  r.safe = world.check_vs_safety().empty();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto export_path = obs::export_path_from_args(argc, argv);
  auto metrics = std::make_shared<obs::MetricsRegistry>();

  std::printf("Ablation (footnote 7): 3-round vs 1-round membership formation\n");
  std::printf("partition at 1s, heal at 4s; merge stabilization l' of the full group\n\n");
  const std::vector<int> widths{4, 10, 8, 14, 8, 11, 6};
  std::printf("%s\n", harness::fmt_row({"n", "mode", "seed", "merge l'", "views",
                                        "proposals", "safe"},
                                       widths)
                          .c_str());
  double sum3 = 0, sum1 = 0;
  int count = 0;
  bool all_safe = true;
  for (int n : {4, 6}) {
    for (std::uint64_t seed : {11u, 22u, 33u}) {
      for (const auto mode :
           {membership::FormationMode::kThreeRound, membership::FormationMode::kOneRound}) {
        const auto r = run_one(mode, n, seed, metrics);
        all_safe = all_safe && r.safe;
        const bool three = mode == membership::FormationMode::kThreeRound;
        if (r.merge_lprime >= 0)
          metrics
              ->gauge("bench.merge_lprime_us." + std::string(three ? "r3" : "r1") + ".n" +
                      std::to_string(n) + ".s" + std::to_string(seed))
              .set(r.merge_lprime);
        if (r.merge_lprime >= 0) {
          (three ? sum3 : sum1) += static_cast<double>(r.merge_lprime);
          if (three) ++count;
        }
        std::printf("%s\n",
                    harness::fmt_row({std::to_string(n), three ? "3-round" : "1-round",
                                      std::to_string(seed),
                                      r.merge_lprime < 0 ? "never"
                                                         : harness::fmt_time(r.merge_lprime),
                                      std::to_string(r.views), std::to_string(r.proposals),
                                      r.safe ? "yes" : "NO"},
                                     widths)
                        .c_str());
      }
    }
  }
  if (count > 0) {
    std::printf("\nmean merge l': 3-round %.1fms, 1-round %.1fms\n", sum3 / count / 1000.0,
                sum1 / count / 1000.0);
    std::printf("footnote 7 claim (1-round stabilizes less quickly): %s\n",
                (sum1 > sum3 && all_safe) ? "REPRODUCED" : "NOT clearly reproduced");
  }

  if (export_path) {
    if (!obs::JsonExporter::write_file(*metrics, *export_path, "bench_formation_rounds")) {
      std::fprintf(stderr, "failed to write %s\n", export_path->c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot written to %s\n", export_path->c_str());
  }
  return all_safe ? 0 : 1;
}
