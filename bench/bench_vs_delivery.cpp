// E2 — Section 8 delivery bound: in a stable view of n members, a message
// sent at time t is safe at every member by t + d. The paper's token-ring
// analysis gives d = 2*pi + n*delta; our token variant needs one extra lap
// to board the token, one to deliver everywhere, and one to circulate the
// delivery counters, giving d_impl = 3*(pi + n*delta).
// We measure the send -> safe-at-everyone latency distribution and compare
// against both.

#include <cstdio>
#include <memory>
#include <set>

#include "harness/scenario.hpp"
#include "harness/stats.hpp"
#include "harness/world.hpp"
#include "obs/json_exporter.hpp"

using namespace vsg;

int main(int argc, char** argv) {
  const auto export_path = obs::export_path_from_args(argc, argv);
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  std::printf("E2: send->safe latency in a stable group vs d = 2pi + n*delta\n");
  struct ParamSet {
    const char* name;
    membership::TokenRingConfig ring;
  };
  ParamSet params[] = {
      {"delta=5ms pi=40ms", {}},
      {"delta=5ms pi=80ms", {sim::msec(5), sim::msec(80), sim::msec(250)}},
      {"delta=2ms pi=20ms", {sim::msec(2), sim::msec(20), sim::msec(100)}},
  };
  const std::vector<int> widths{4, 12, 12, 12, 12, 12, 8};
  bool all_ok = true;
  for (const auto& ps : params) {
    std::printf("\n-- %s --\n", ps.name);
    std::printf("%s\n",
                harness::fmt_row({"n", "p50", "p90", "max", "d(paper)", "d(impl)", "ok"},
                                 widths)
                    .c_str());
    for (int n = 2; n <= 8; ++n) {
      harness::WorldConfig cfg;
      cfg.n = n;
      cfg.backend = harness::Backend::kTokenRing;
      cfg.ring = ps.ring;
      cfg.link.delta = ps.ring.delta;  // delta must bound real link delay
      cfg.seed = 500 + n;
      cfg.metrics = metrics;  // all sweep cells accumulate into one registry
      harness::World world(cfg);

      // Steady traffic from every member, spaced randomly relative to the
      // token period so all phases of the token cycle are sampled.
      std::vector<ProcId> senders;
      std::set<ProcId> q;
      for (ProcId p = 0; p < n; ++p) {
        senders.push_back(p);
        q.insert(p);
      }
      harness::steady_traffic(senders, 40, sim::msec(500), ps.ring.pi * 3 / 4)
          .apply(world);
      world.run_until(sim::sec(1) + 40 * ps.ring.pi + sim::sec(2));

      const auto lat = harness::vs_safe_latency(world.recorder().events(), q, n, n,
                                                sim::msec(500));
      const sim::Time d_paper = 2 * ps.ring.pi + n * ps.ring.delta;
      const sim::Time d_impl = 3 * (ps.ring.pi + n * ps.ring.delta);
      const bool ok = lat.incomplete == 0 && lat.count > 0 && lat.max <= d_impl &&
                      world.check_vs_safety().empty();
      all_ok = all_ok && ok;
      std::printf("%s\n", harness::fmt_row({std::to_string(n), harness::fmt_time(lat.p50),
                                            harness::fmt_time(lat.p90),
                                            harness::fmt_time(lat.max),
                                            harness::fmt_time(d_paper),
                                            harness::fmt_time(d_impl), ok ? "yes" : "NO"},
                                           widths)
                              .c_str());
    }
  }
  std::printf("\npaper claim: max latency <= d, growing linearly in n and pi -> %s\n",
              all_ok ? "REPRODUCED (with d_impl = 3(pi + n*delta))" : "NOT reproduced");
  if (export_path) {
    if (!obs::JsonExporter::write_file(*metrics, *export_path, "bench_vs_delivery")) {
      std::fprintf(stderr, "failed to write %s\n", export_path->c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", export_path->c_str());
  }
  return all_ok ? 0 : 1;
}
