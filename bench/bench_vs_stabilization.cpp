// E1 — Section 8 stabilization bound:
//   b = 9*delta + max{pi + (n+3)*delta, mu}.
// After the failure status stabilizes to a consistent partition with
// component Q (|Q| = n), the VS implementation must converge to one view
// with membership exactly Q within l' <= b. We measure l' for (a) a
// partition shrinking the group and (b) a heal merging two groups, across
// group sizes and timing parameters, and compare with the bound.
//
// With `--export PATH` the sweep's shared metrics registry — packet
// counts, ring.formation_rounds, state-exchange bytes — is written as a
// vsg-metrics-v1 JSON snapshot.

#include <cstdio>
#include <memory>
#include <set>

#include "harness/stats.hpp"
#include "harness/world.hpp"
#include "obs/json_exporter.hpp"
#include "obs/stopwatch.hpp"

using namespace vsg;

namespace {

sim::Time bound_b(const membership::TokenRingConfig& cfg, int n) {
  return 9 * cfg.delta + std::max(cfg.pi + (n + 3) * cfg.delta, cfg.mu);
}

struct Row {
  int n;
  sim::Time b;
  sim::Time split_lprime;
  sim::Time merge_lprime;
  bool ok;
};

Row run_one(int group, const membership::TokenRingConfig& ring, std::uint64_t seed,
            const std::shared_ptr<obs::MetricsRegistry>& metrics) {
  obs::ScopedWallTimer timer(
      metrics->histogram("bench.run_wall", obs::Unit::kWallMicros));

  const int n = group + 2;  // two extra processors get partitioned away
  harness::WorldConfig cfg;
  cfg.n = n;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.ring = ring;
  // The analysis assumes delta is a true bound on good-link delay; keep the
  // physical link model in sync with the protocol's assumption.
  cfg.link.delta = ring.delta;
  cfg.seed = seed;
  cfg.metrics = metrics;
  harness::World world(cfg);

  std::set<ProcId> q;
  for (ProcId p = 0; p < group; ++p) q.insert(p);
  std::set<ProcId> rest;
  for (ProcId p = group; p < n; ++p) rest.insert(p);

  const sim::Time b = bound_b(ring, group);
  const sim::Time d = 3 * (ring.pi + group * ring.delta);

  // Phase 1: split at 1s; measure view stabilization of Q.
  world.partition_at(sim::sec(1), {q, rest});
  world.run_until(sim::sec(1) + 4 * b + sim::sec(1));
  const auto split = world.vs_report(q, d);
  const sim::Time split_lprime =
      split.required_lprime.value_or(-1);

  // Phase 2: heal; measure stabilization of the merged group.
  const sim::Time heal_at = world.simulator().now();
  world.heal_at(heal_at);
  std::set<ProcId> all;
  for (ProcId p = 0; p < n; ++p) all.insert(p);
  const sim::Time b_all = bound_b(ring, n);
  world.run_until(heal_at + 4 * b_all + sim::sec(1));
  const auto merged = world.vs_report(all, 3 * (ring.pi + n * ring.delta));
  const sim::Time merge_lprime = merged.required_lprime.value_or(-1);

  // Stabilization samples feed the exported histogram; -1 means "never".
  auto& hist = metrics->histogram("bench.stabilization", obs::Unit::kSimMicros);
  if (split_lprime >= 0) hist.observe(split_lprime);
  if (merge_lprime >= 0) hist.observe(merge_lprime);

  Row row;
  row.n = group;
  row.b = b;
  row.split_lprime = split_lprime;
  row.merge_lprime = merge_lprime;
  row.ok = split.holds_with(b) && merged.holds_with(b_all) &&
           world.check_vs_safety().empty();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto export_path = obs::export_path_from_args(argc, argv);
  auto metrics = std::make_shared<obs::MetricsRegistry>();

  std::printf("E1: view stabilization vs the Section 8 bound b = 9d + max{pi+(n+3)d, mu}\n");
  struct ParamSet {
    const char* name;
    membership::TokenRingConfig ring;
  };
  ParamSet params[] = {
      {"delta=5ms pi=40ms mu=250ms", {}},
      {"delta=2ms pi=20ms mu=100ms",
       {sim::msec(2), sim::msec(20), sim::msec(100)}},
      {"delta=10ms pi=80ms mu=400ms",
       {sim::msec(10), sim::msec(80), sim::msec(400)}},
  };
  const std::vector<int> widths{6, 12, 14, 14, 10};
  bool all_ok = true;
  for (const auto& ps : params) {
    std::printf("\n-- %s --\n", ps.name);
    std::printf("%s\n", harness::fmt_row({"|Q|", "bound b", "split l'", "merge l'", "holds"},
                                         widths)
                            .c_str());
    for (int group = 2; group <= 8; ++group) {
      const Row row = run_one(group, ps.ring, 1000 + group, metrics);
      all_ok = all_ok && row.ok;
      std::printf("%s\n",
                  harness::fmt_row({std::to_string(row.n), harness::fmt_time(row.b),
                                    row.split_lprime < 0 ? "never"
                                                         : harness::fmt_time(row.split_lprime),
                                    row.merge_lprime < 0 ? "never"
                                                         : harness::fmt_time(row.merge_lprime),
                                    row.ok ? "yes" : "NO"},
                                   widths)
                      .c_str());
    }
  }
  std::printf("\npaper claim: measured l' <= b for every configuration -> %s\n",
              all_ok ? "REPRODUCED" : "NOT reproduced");

  if (export_path) {
    if (!obs::JsonExporter::write_file(*metrics, *export_path,
                                       "bench_vs_stabilization")) {
      std::fprintf(stderr, "failed to write %s\n", export_path->c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", export_path->c_str());
  }
  return all_ok ? 0 : 1;
}
