// E7 — microbenchmarks of the core machinery (google-benchmark): label and
// viewid comparison, summary-algebra operations at various sizes, wire
// round trips, event-queue operations, and a full invariant-checker sweep.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/summary.hpp"
#include "harness/scenario.hpp"
#include "harness/world.hpp"
#include "obs/json_exporter.hpp"
#include "membership/messages.hpp"
#include "sim/event_queue.hpp"
#include "spec/to_trace_checker.hpp"
#include "spec/vs_trace_checker.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"
#include "vstoto/wire.hpp"

using namespace vsg;

namespace {

core::Label make_label(std::uint64_t i) {
  return core::Label{core::ViewId{i % 7, static_cast<ProcId>(i % 5)},
                     static_cast<std::uint32_t>(i), static_cast<ProcId>(i % 3)};
}

core::Summary make_summary(std::size_t size) {
  core::Summary x;
  for (std::size_t i = 0; i < size; ++i) {
    const auto l = make_label(i);
    x.con[l] = "value-" + std::to_string(i);
    x.ord.push_back(l);
  }
  x.next = static_cast<std::uint32_t>(size / 2 + 1);
  x.high = core::ViewId{3, 1};
  return x;
}

void BM_LabelCompare(benchmark::State& state) {
  const auto a = make_label(123456);
  const auto b = make_label(123457);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
    benchmark::DoNotOptimize(b < a);
  }
}
BENCHMARK(BM_LabelCompare);

void BM_RngNext(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_FullOrder(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  core::SummaryMap y;
  for (ProcId p = 0; p < 3; ++p) {
    auto x = make_summary(size);
    x.high = core::ViewId{static_cast<std::uint64_t>(p), p};
    y[p] = std::move(x);
  }
  for (auto _ : state) benchmark::DoNotOptimize(core::fullorder(y));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullOrder)->Range(8, 2048)->Complexity();

void BM_Knowncontent(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  core::SummaryMap y{{0, make_summary(size)}, {1, make_summary(size)}};
  for (auto _ : state) benchmark::DoNotOptimize(core::knowncontent(y));
}
BENCHMARK(BM_Knowncontent)->Range(8, 2048);

void BM_SummaryEncodeDecode(benchmark::State& state) {
  const auto x = make_summary(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto bytes = vstoto::encode_message(vstoto::Message{x});
    benchmark::DoNotOptimize(vstoto::decode_message_ex(bytes));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(vstoto::encode_message(vstoto::Message{x}).size()));
}
BENCHMARK(BM_SummaryEncodeDecode)->Range(8, 1024);

void BM_TokenEncodeDecode(benchmark::State& state) {
  membership::Token t;
  t.gid = core::ViewId{4, 0};
  for (int i = 0; i < state.range(0); ++i)
    t.entries.emplace_back(static_cast<ProcId>(i % 5),
                           util::Bytes(64, static_cast<std::uint8_t>(i)));
  for (ProcId p = 0; p < 5; ++p) t.delivered[p] = 100;
  for (auto _ : state) {
    const auto bytes = membership::encode_packet(membership::Packet{t});
    benchmark::DoNotOptimize(membership::decode_packet_ex(bytes));
  }
}
BENCHMARK(BM_TokenEncodeDecode)->Range(1, 256);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < state.range(0); ++i)
      q.schedule(i * 7 % 1000, [] {});
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Range(64, 4096);

void BM_LabeledValueWire(benchmark::State& state) {
  const vstoto::LabeledValue lv{make_label(7), std::string(128, 'x')};
  for (auto _ : state) {
    const auto bytes = vstoto::encode_message(vstoto::Message{lv});
    benchmark::DoNotOptimize(vstoto::decode_message_ex(bytes));
  }
}
BENCHMARK(BM_LabeledValueWire);

// --- Verification machinery at working scale -------------------------------

// Registry the --export flag snapshots; bench_world's layers report into it.
std::shared_ptr<obs::MetricsRegistry>& bench_registry() {
  static auto registry = std::make_shared<obs::MetricsRegistry>();
  return registry;
}

// A settled 4-processor run with traffic and one partition/heal episode.
harness::World& bench_world() {
  static harness::World* world = [] {
    harness::WorldConfig cfg;
    cfg.n = 4;
    cfg.backend = harness::Backend::kSpec;
    cfg.seed = 77;
    cfg.metrics = bench_registry();
    auto* w = new harness::World(cfg);
    w->partition_at(sim::msec(100), {{0, 1, 2}, {3}});
    harness::steady_traffic({0, 1}, 10, sim::msec(150), sim::msec(20)).apply(*w);
    w->heal_at(sim::msec(600));
    w->run_until(sim::sec(3));
    return w;
  }();
  return *world;
}

void BM_InvariantSweep(benchmark::State& state) {
  auto& world = bench_world();
  const auto gs = world.global_state();
  for (auto _ : state) benchmark::DoNotOptimize(verify::check_all_invariants(gs));
}
BENCHMARK(BM_InvariantSweep);

void BM_VSTraceChecker(benchmark::State& state) {
  auto& world = bench_world();
  const auto& events = world.recorder().events();
  for (auto _ : state) {
    spec::VSTraceChecker checker(4, 4);
    checker.check_all(events);
    benchmark::DoNotOptimize(checker.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_VSTraceChecker);

void BM_TOTraceChecker(benchmark::State& state) {
  auto& world = bench_world();
  const auto& events = world.recorder().events();
  for (auto _ : state) {
    spec::TOTraceChecker checker(4);
    checker.check_all(events);
    benchmark::DoNotOptimize(checker.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_TOTraceChecker);

}  // namespace

// Explicit main (not BENCHMARK_MAIN): --export must be consumed before
// benchmark::Initialize, which rejects flags it does not recognize.
int main(int argc, char** argv) {
  const auto export_path = obs::export_path_from_args(argc, argv);
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--export") {
      ++i;  // skip the PATH operand too
      continue;
    }
    if (arg.rfind("--export=", 0) == 0) continue;
    argv[kept++] = argv[i];
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (export_path) {
    if (!obs::JsonExporter::write_file(*bench_registry(), *export_path, "bench_micro")) {
      std::fprintf(stderr, "failed to write %s\n", export_path->c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", export_path->c_str());
  }
  return 0;
}
